"""Sliding-window rate measurement over the monotonic telemetry clock.

Serving-side health stats ("this session is processing 23 frames/sec
right now") and the load generator's offered-rate accounting both need
the same primitive: a monotonic event counter whose *rate* is read over
a recent window rather than over the whole run.  :class:`RateWindow` is
that one shared implementation — marks are timestamped with
:func:`~repro.telemetry.tracer.monotonic_s` (or an injected clock, which
is what the deterministic tests use), old marks are evicted lazily, and
the reported rate divides by the *effective* window (the span of time
actually observed), so a window read half a second after the first mark
does not under-report by ``window_s``.

:class:`~repro.telemetry.tracer.Tracer` integrates it behind
``tracer.mark(name)`` / ``tracer.rate(name)``: a mark increments the
ordinary monotonic counter *and* feeds the name's rate window, so a
traced serving run exports cumulative totals and live rates from the
same call sites.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from .tracer import TelemetryError, monotonic_s

#: Default sliding-window span (seconds).  Long enough to smooth
#: per-frame jitter at interactive frame rates, short enough that a
#: stalled session's rate visibly decays within a few stats polls.
DEFAULT_WINDOW_S = 5.0


class RateWindow:
    """Monotonic event counter with a sliding-window rate.

    Args:
        window_s: how far back (seconds) marks contribute to ``rate()``.
        clock: monotonic seconds source; defaults to the telemetry
            clock.  Tests inject a fake clock to make rates exact.

    Not thread-safe on its own; the owning :class:`Tracer` (or the serve
    engine's single scheduler thread) serialises access.
    """

    __slots__ = ("window_s", "_clock", "_marks", "_total", "_count",
                 "_first_t")

    def __init__(self, window_s: float = DEFAULT_WINDOW_S,
                 clock: Callable[[], float] = monotonic_s):
        if window_s <= 0:
            raise TelemetryError(
                f"window_s must be positive, got {window_s}"
            )
        self.window_s = float(window_s)
        self._clock = clock
        # Owner-serialised state: Tracer.mark/rate hold Tracer._lock
        # around every call, the serve engine's private windows are only
        # touched by step()/stats() under ServeEngine._lock, and loadgen
        # windows never leave the generating thread.
        # guarded-by: owner -- every creator serialises access (see above)
        self._marks: deque[tuple[float, float]] = deque()
        # guarded-by: owner -- every creator serialises access (see _marks)
        self._total = 0.0
        # guarded-by: owner -- every creator serialises access (see _marks)
        self._count = 0
        # guarded-by: owner -- every creator serialises access (see _marks)
        self._first_t: float | None = None

    @property
    def total(self) -> float:
        """Cumulative marked value since construction (never evicted)."""
        return self._total

    @property
    def count(self) -> int:
        """Number of ``mark`` calls since construction."""
        return self._count

    def mark(self, value: float = 1.0, now: float | None = None) -> None:
        """Record ``value`` events at ``now`` (default: the clock)."""
        t = self._clock() if now is None else now
        if self._first_t is None:
            self._first_t = t
        self._marks.append((t, value))
        self._total += value
        self._count += 1
        self._evict(t)

    def rate(self, now: float | None = None) -> float:
        """Events/sec over the effective window ending at ``now``.

        The effective window is ``min(window_s, now - first_mark)`` so
        early reads are not diluted; with no marks yet the rate is 0.
        """
        if self._first_t is None:
            return 0.0
        t = self._clock() if now is None else now
        self._evict(t)
        if not self._marks:
            return 0.0
        effective = min(self.window_s, max(t - self._first_t, 0.0))
        if effective <= 0.0:
            # All marks at one instant: report them against the full
            # window rather than claiming an infinite rate.
            effective = self.window_s
        return sum(v for _, v in self._marks) / effective

    def _evict(self, now: float) -> None:
        horizon = now - self.window_s
        marks = self._marks
        while marks and marks[0][0] < horizon:
            marks.popleft()


__all__ = ["DEFAULT_WINDOW_S", "RateWindow"]
