"""Per-kernel tracing and run telemetry (the SLAMBench metrics API).

The measurement substrate for every performance claim in this repo:
nested spans with monotonic timestamps (:class:`Tracer`,
:func:`use_tracer`), per-kernel p50/p95/max aggregation
(:mod:`~repro.telemetry.aggregate`), JSONL / Chrome ``trace_event`` /
CSV exporters (:mod:`~repro.telemetry.exporters`), and a provenance
:class:`RunManifest` attached to every traced run.

Instrumented code emits into the *current* tracer::

    from repro import telemetry

    tracer = telemetry.Tracer()
    with telemetry.use_tracer(tracer):
        result = run_benchmark(system, sequence)
    telemetry.export(tracer, "out.json")          # chrome://tracing
    print(telemetry.summarize_trace_file("out.json"))

The default current tracer is :data:`DISABLED`, so un-traced runs pay
(almost) nothing.
"""

from .aggregate import (
    SpanStats,
    aggregate_spans,
    aggregate_tracer,
    load_spans,
    summarize_trace_file,
    summary_rows,
)
from .exporters import (
    chrome_trace_events,
    export,
    write_chrome_trace,
    write_csv_summary,
    write_jsonl,
)
from .manifest import RunManifest, git_revision, platform_fingerprint
from .rate import DEFAULT_WINDOW_S, RateWindow
from .tracer import (
    DISABLED,
    SpanEvent,
    TelemetryError,
    Tracer,
    current_tracer,
    monotonic_s,
    stage,
    use_tracer,
)

__all__ = [
    "DEFAULT_WINDOW_S",
    "DISABLED",
    "RateWindow",
    "RunManifest",
    "SpanEvent",
    "SpanStats",
    "TelemetryError",
    "Tracer",
    "aggregate_spans",
    "aggregate_tracer",
    "chrome_trace_events",
    "current_tracer",
    "export",
    "git_revision",
    "load_spans",
    "monotonic_s",
    "platform_fingerprint",
    "stage",
    "summarize_trace_file",
    "summary_rows",
    "use_tracer",
    "write_chrome_trace",
    "write_csv_summary",
    "write_jsonl",
]
