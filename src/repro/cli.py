"""Command-line interface — the analogue of SLAMBench's loader binaries.

Subcommands:

* ``run``      — benchmark an algorithm on a dataset (the loader loop).
* ``dse``      — HyperMapper exploration (Figure 2) at chosen scale.
* ``crowd``    — the 83-device Android campaign (Figure 3).
* ``devices``  — list the mobile device database.
* ``backends`` — the cross-implementation comparison (E5).
* ``trace``    — inspect telemetry traces (``trace summarize FILE``).
* ``lint``     — repo-specific static analysis (``repro.analysis``);
  exits 0 when clean, 1 on findings, 2 on an internal analyzer error.
* ``graph``    — stage-graph tooling (``repro.graph``): ``check``
  compiles every registered graph definition (same 0/1/2 exit contract
  as ``lint``), ``show`` prints a graph's schedule and edges, ``diff``
  runs the legacy-vs-graph differential harness on a dataset.
* ``arch``     — architecture policy tooling (``ARCHITECTURE.toml``):
  ``show`` the layer diagram, ``check`` rules RPR008-010, ``graph``
  the call graph as JSON/DOT, ``effects``/``snapshot``/``diff`` the
  whole-program effect inference.
* ``races``    — static concurrency verification (rules RPR014-016):
  ``check`` lockset races / lock order / wait discipline, ``show`` the
  thread contexts and per-field verdicts, ``report`` JSON for CI,
  ``snapshot``/``diff`` the committed ``CONCURRENCY.json``.

``run`` and ``dse`` accept ``--trace PATH`` to capture a per-kernel
telemetry trace of the run: ``.jsonl`` writes the raw event log,
``.csv`` the per-kernel summary, anything else a Chrome
``trace_event`` JSON loadable in ``chrome://tracing`` / Perfetto.

``run`` also accepts ``--kernel-backend`` for kfusion: the float32
workspace kernels (``fast``, default), the float64 textbook kernels
(``reference``), the voxel-block TSDF (``sparse``), and — when numba
is installed — the compiled ``jit`` backend (``repro.perf``).

Examples::

    repro-benchmark run --dataset lr_kt0 --algorithm kfusion \
        --frames 20 --width 80 --height 60 --set volume_resolution=128
    repro-benchmark run --frames 10 --kernel-backend reference
    repro-benchmark run --frames 10 --trace out.json
    repro-benchmark trace summarize out.json
    repro-benchmark dse --samples 200 --iterations 10
    repro-benchmark dse --workers 4 --store dse_store.jsonl --resume
    repro-benchmark crowd --workers 4
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .core import format_table, run_benchmark
from .core.registry import (
    algorithm_names,
    create_algorithm,
    create_dataset,
    dataset_names,
    register_defaults,
)
from .errors import ReproError
from .perf import kernel_backend_names
from .platforms import PlatformConfig, odroid_xu3, phone_database
from .telemetry import Tracer, export, summarize_trace_file, use_tracer


def _parse_override(text: str):
    """Parse ``name=value`` with numeric coercion."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(f"expected name=value, got {text!r}")
    name, raw = text.split("=", 1)
    for cast in (int, float):
        try:
            return name, cast(raw)
        except ValueError:
            continue
    return name, raw


def _write_trace(tracer: Tracer, path: str) -> None:
    fmt = export(tracer, path)
    print(f"wrote {fmt} trace ({len(tracer)} spans) to {path}")


def _cmd_run(args) -> int:
    register_defaults()
    sequence = create_dataset(args.dataset, n_frames=args.frames,
                              width=args.width, height=args.height,
                              seed=args.seed)
    factory_kwargs = {}
    if args.kernel_backend is not None:
        factory_kwargs["kernel_backend"] = args.kernel_backend
    if args.pipeline is not None:
        factory_kwargs["pipeline"] = args.pipeline
    system = create_algorithm(args.algorithm, **factory_kwargs)
    config = dict(args.set or [])
    tracer = Tracer(enabled=bool(args.trace))
    result = run_benchmark(
        system,
        sequence,
        configuration=config,
        device=odroid_xu3(),
        platform_config=PlatformConfig(backend=args.backend),
        tracer=tracer,
    )
    print(format_table([result.summary()],
                       title=f"{args.algorithm} on {args.dataset}"))
    if args.trace:
        _write_trace(tracer, args.trace)
    return 0


def _cmd_serve(args) -> int:
    import json

    from .serve import (
        InProcessTransport,
        LoadSpec,
        ServeEngine,
        ServePolicy,
        run_load,
    )

    register_defaults()
    sequence = create_dataset(args.dataset, n_frames=args.stream_frames,
                              width=args.width, height=args.height,
                              seed=args.seed)
    policy = ServePolicy(
        queue_capacity=args.queue_capacity,
        frames_per_round=args.frames_per_round,
        drop_policy=args.drop_policy,
    )
    spec = LoadSpec(
        clients=args.clients,
        frames_per_client=args.frames,
        mean_interarrival_s=args.mean_interarrival,
        arrival_shape=args.arrival_shape,
        fps_median=args.fps,
        fps_sigma=args.fps_sigma,
        speed=args.speed,
        seed=args.seed,
    )
    tracer = Tracer(enabled=bool(args.trace))
    with use_tracer(tracer):
        engine = ServeEngine(InProcessTransport(), policy, tracer=tracer)
        if args.threaded:
            engine.start()
        report = run_load(
            engine, sequence, spec,
            algorithm=args.algorithm,
            configuration=dict(args.set or []),
            threaded=args.threaded,
        )
        engine.close()

    doc = report.as_dict()
    stats = doc["engine"]
    print(format_table(
        [{
            "sessions": stats["sessions"]["opened"],
            "closed": stats["sessions"]["closed"],
            "crashed": stats["sessions"]["crashed"],
            "frames": stats["frames"]["received"],
            "processed": stats["frames"]["processed"],
            "dropped": stats["frames"]["dropped"],
            "drop_rate": round(stats["frames"]["drop_rate"], 4),
            "p50_ms": round(stats["latency"]["p50_s"] * 1e3, 2),
            "p95_ms": round(stats["latency"]["p95_s"] * 1e3, 2),
            "wall_s": round(doc["wall_s"], 3),
        }],
        title=(f"repro serve: {args.clients} clients x {args.frames} "
               f"frames (speed {args.speed}x, "
               f"{'threaded' if args.threaded else 'sync'})"),
    ))
    if args.stats_out:
        with open(args.stats_out, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote stats report to {args.stats_out}")
    if args.trace:
        _write_trace(tracer, args.trace)
    # Crashed sessions mean the serving fleet lost work: nonzero exit so
    # smoke jobs fail loudly even though the engine itself survived.
    return 1 if stats["sessions"]["crashed"] else 0


def _cmd_dse(args) -> int:
    from .experiments import fig2_dse
    from .hypermapper import (
        ConstraintSet,
        accuracy_limit,
        exploration_summary,
        format_knowledge,
        save_exploration_csv,
    )

    tracer = Tracer(enabled=bool(args.trace))
    with use_tracer(tracer):
        figure = fig2_dse.run_surrogate(
            n_random=args.samples,
            n_initial=max(10, args.samples // 5),
            n_iterations=args.iterations,
            samples_per_iteration=8,
            seed=args.seed,
            workers=args.workers,
            store_path=args.store or None,
            resume=args.resume,
            backend_dimension=not args.no_backend_dimension,
        )
    print(format_table(figure.summary_rows(),
                       title="Design-space exploration"))
    constraints = ConstraintSet.of([accuracy_limit(figure.accuracy_limit_m)])
    print(exploration_summary(figure.active_result, constraints))
    print()
    print(format_knowledge(figure.knowledge))
    if args.csv:
        save_exploration_csv(figure.active_result, args.csv)
        print(f"wrote samples to {args.csv}")
    if args.trace:
        _write_trace(tracer, args.trace)
    return 0


def _cmd_trace_summarize(args) -> int:
    rows = summarize_trace_file(args.trace_file)
    print(format_table(rows, title=f"trace summary: {args.trace_file}"))
    return 0


def _cmd_crowd(args) -> int:
    from .experiments import fig3_android

    figure = fig3_android.run(seed=args.seed, workers=args.workers)
    print(figure.histogram())
    s = figure.summary
    print(f"median {s.summary.median:.1f}x, geomean {s.geometric_mean:.1f}x")
    return 0


def _cmd_evaluate(args) -> int:
    from .datasets.tum_format import load_tum_trajectory
    from .metrics import absolute_trajectory_error, relative_pose_error
    from .metrics.drift import trajectory_drift

    estimated = load_tum_trajectory(args.estimated)
    reference = load_tum_trajectory(args.reference)
    ate = absolute_trajectory_error(estimated, reference,
                                    max_dt=args.max_dt)
    rows = [{
        "metric": "ATE",
        "rmse_m": ate.rmse,
        "mean_m": ate.mean,
        "max_m": ate.max,
        "frames": ate.matched_frames,
    }]
    try:
        rpe = relative_pose_error(estimated, reference, delta=args.delta,
                                  max_dt=args.max_dt)
        rows.append({
            "metric": f"RPE(delta={args.delta})",
            "rmse_m": rpe.trans_rmse,
            "mean_m": rpe.trans_mean,
            "max_m": rpe.trans_max,
            "frames": rpe.pairs,
        })
    except ReproError:
        pass
    print(format_table(rows, title="Trajectory evaluation"))
    try:
        drift = trajectory_drift(estimated, reference, max_dt=args.max_dt)
        print(f"path length {drift.path_length_m:.3f} m, endpoint drift "
              f"{drift.endpoint_drift_percent:.2f} %")
    except ReproError:
        pass
    return 0


def _cmd_devices(_args) -> int:
    rows = [
        {
            "device": d.name,
            "year": d.year,
            "form": d.form_factor,
            "gpu": d.gpu.name if d.gpu else "-",
            "gpu_gflops": d.gpu.gflops if d.gpu else 0.0,
        }
        for d in phone_database()
    ]
    print(format_table(rows, title=f"{len(rows)} devices"))
    return 0


def _cmd_backends(_args) -> int:
    from .experiments import backends

    print(format_table(backends.run().rows, title="Backend comparison"))
    return 0


def _cmd_graph_check(args) -> int:
    from .analysis.lint import (
        LINT_EXIT_CLEAN,
        LINT_EXIT_FINDINGS,
        LINT_EXIT_INTERNAL,
    )
    from .analysis.policy import load_policy
    from .errors import GraphError, PerfError
    from .graph import compile_graph, create_graph, graph_names

    register_defaults()
    names = [args.graph] if args.graph else graph_names()
    try:
        policy = load_policy(args.policy)
    except ReproError as exc:
        print(f"internal error: {exc}", file=sys.stderr)
        return LINT_EXIT_INTERNAL
    findings = 0
    try:
        for name in names:
            try:
                instance = compile_graph(create_graph(name), policy=policy)
            except (GraphError, PerfError) as exc:
                print(f"FAIL {name}: {exc}")
                findings += 1
            else:
                print(f"ok   {name}: {len(instance)} stages, schedule "
                      f"{' -> '.join(instance.stage_names)}")
    except ReproError as exc:
        print(f"internal error: {exc}", file=sys.stderr)
        return LINT_EXIT_INTERNAL
    return LINT_EXIT_FINDINGS if findings else LINT_EXIT_CLEAN


def _cmd_graph_show(args) -> int:
    from .graph import compile_graph, create_graph

    register_defaults()
    instance = compile_graph(create_graph(args.graph))
    spec = instance.spec
    print(f"graph {spec.name}: {len(instance)} stages")
    print(f"  schedule: {' -> '.join(instance.stage_names)}")
    for node_name, stage_name in spec.nodes:
        print(f"  node {node_name} [{stage_name}]")
    for edge in spec.edges:
        print(f"  edge {edge.label}")
    for tap in spec.taps:
        print(f"  tap  {tap.node}.{tap.port} (every {tap.every})")
    return 0


def _cmd_graph_diff(args) -> int:
    from .graph.diffrun import diff_pipelines, make_diff_system

    register_defaults()
    sequence = create_dataset(args.dataset, n_frames=args.frames,
                              width=args.width, height=args.height,
                              seed=args.seed)
    backend = args.kernel_backend or "fast"
    report = diff_pipelines(
        make_diff_system(args.algorithm, backend=backend),
        sequence,
        configuration=dict(args.set or []),
        algorithm=args.algorithm,
        backend=backend,
    )
    print(report.summary())
    return 0 if report.equivalent else 1


def _collect_registered_graphs():
    """Materialize every registered graph definition for the verifier.

    Returns ``(graphs, failures)`` where ``failures`` are findings for
    registry entries whose factory raised — those must fail
    ``repro dataflow check`` (the CI gate that every entry is statically
    compilable), not crash it.
    """
    import os

    from .analysis.dataflow import GraphUnderCheck
    from .analysis.findings import Finding
    from .graph import get_stage, graph_factory, graph_names

    register_defaults()
    graphs, failures = [], []
    for name in graph_names():
        factory = graph_factory(name)
        origin = getattr(getattr(factory, "__code__", None),
                         "co_filename", "<unknown>")
        origin = os.path.relpath(origin) if os.path.isabs(origin) else origin
        try:
            spec = factory()
            stages = {node: get_stage(stage_name)
                      for node, stage_name in spec.nodes}
        except Exception as exc:
            failures.append(Finding(
                path=origin, line=1, col=1, rule_id="RPR011",
                message=f"graph factory {name!r} cannot be evaluated "
                        f"statically: {exc}",
            ))
            continue
        graphs.append(GraphUnderCheck(spec=spec, stages=stages,
                                      origin=origin))
    return graphs, failures


def _cmd_dataflow_check(args) -> int:
    from .analysis.dataflow import run_dataflow

    graphs, failures = _collect_registered_graphs()
    return run_dataflow(
        graphs,
        args.paths,
        output_format=args.format,
        baseline_path=args.baseline,
        extra_findings=failures,
    )


def _cmd_dataflow_show(args) -> int:
    import json as _json

    from .analysis.dataflow import describe_graph
    from .analysis.lint import LINT_EXIT_CLEAN, LINT_EXIT_INTERNAL

    graphs, failures = _collect_registered_graphs()
    if args.graph:
        graphs = [g for g in graphs if g.spec.name == args.graph]
        if not graphs:
            print(f"internal error: no registered graph {args.graph!r}",
                  file=sys.stderr)
            return LINT_EXIT_INTERNAL
    docs = [describe_graph(g) for g in graphs]
    if args.format == "json":
        print(_json.dumps(docs if args.graph == "" else docs[0], indent=2))
        return LINT_EXIT_CLEAN
    for doc in docs:
        print(f"graph {doc['graph']} ({doc['origin']})")
        print(f"  schedule: {' -> '.join(doc['schedule'])}")
        for port in doc["ports"]:
            arrow = "<-" if port["direction"] == "in" else "->"
            print(f"  {port['node']}.{port['port']} {arrow} "
                  f"{port['normalized']}")
        for node, dims in sorted(doc["solved_dims"].items()):
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(dims.items()))
            print(f"  solved[{node}]: {pairs}")
        for region in doc["regions"]:
            tail = " cross-frame" if region["cross_frame"] else ""
            readers = ",".join(region["readers"]) or "-"
            print(f"  region {region['prefix']}* writer="
                  f"{region['writer']} readers={readers}{tail}")
    for failure in failures:
        print(f"FAIL {failure.message}")
    return LINT_EXIT_CLEAN


def _cmd_lint(args) -> int:
    from .analysis import run_lint

    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
    return run_lint(
        args.paths,
        output_format=args.format,
        select=select,
        baseline_path=args.baseline,
        update_baseline=args.write_baseline,
        migrate_baseline=args.migrate_baseline,
    )


def _cmd_arch(args) -> int:
    from .analysis import arch

    paths = args.paths or list(arch.DEFAULT_PATHS)
    command = args.arch_command or "show"
    if command == "show":
        return arch.arch_show(policy_path=args.policy)
    if command == "check":
        return arch.arch_check(paths)
    if command == "graph":
        return arch.arch_graph(paths, output_format=args.format,
                               granularity=args.granularity,
                               policy_path=args.policy)
    if command == "effects":
        return arch.arch_effects(paths, prefix=args.prefix,
                                 policy_path=args.policy)
    if command == "snapshot":
        return arch.arch_snapshot(paths, output=args.output,
                                  policy_path=args.policy)
    if command == "diff":
        return arch.arch_diff(paths, against=args.against,
                              policy_path=args.policy)
    raise AssertionError(f"unhandled arch command {command!r}")


def _cmd_races(args) -> int:
    from .analysis import races

    paths = args.paths or list(races.DEFAULT_PATHS)
    command = args.races_command or "check"
    if command == "check":
        return races.races_check(paths)
    if command == "show":
        return races.races_show(paths)
    if command == "report":
        return races.races_report(paths)
    if command == "snapshot":
        return races.races_snapshot(paths, output=args.output)
    if command == "diff":
        return races.races_diff(paths, against=args.against)
    raise AssertionError(f"unhandled races command {command!r}")


def build_parser() -> argparse.ArgumentParser:
    register_defaults()
    parser = argparse.ArgumentParser(
        prog="repro-benchmark",
        description="SLAMBench/HyperMapper reproduction CLI",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="benchmark an algorithm on a dataset")
    p_run.add_argument("--dataset", default="lr_kt0", choices=dataset_names())
    p_run.add_argument("--algorithm", default="kfusion",
                       choices=algorithm_names())
    p_run.add_argument("--frames", type=int, default=15)
    p_run.add_argument("--width", type=int, default=80)
    p_run.add_argument("--height", type=int, default=60)
    p_run.add_argument("--backend", default="opencl",
                       choices=("cpp", "openmp", "opencl"))
    p_run.add_argument("--kernel-backend", dest="kernel_backend",
                       default=None, choices=kernel_backend_names(),
                       help="kernel implementation set for kfusion "
                            "(default: fast; see repro.perf)")
    p_run.add_argument("--pipeline", default=None,
                       choices=("graph", "legacy"),
                       help="execution path: compiled stage graph "
                            "(default) or the legacy call sequence")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--set", metavar="NAME=VALUE", action="append",
                       type=_parse_override,
                       help="override an algorithm parameter")
    p_run.add_argument("--trace", metavar="PATH", default="",
                       help="write a telemetry trace (.jsonl event log, "
                            ".csv summary, else Chrome trace_event JSON)")
    p_run.set_defaults(func=_cmd_run)

    p_serve = sub.add_parser(
        "serve", help="concurrent SLAM session engine under generated load "
                      "(repro.serve)")
    p_serve.add_argument("--dataset", default="lr_kt0",
                         choices=dataset_names())
    p_serve.add_argument("--algorithm", default="kfusion",
                         choices=algorithm_names())
    p_serve.add_argument("--clients", type=int, default=8,
                         help="simulated client count")
    p_serve.add_argument("--frames", type=int, default=20,
                         help="frames each client streams")
    p_serve.add_argument("--stream-frames", dest="stream_frames", type=int,
                         default=6,
                         help="distinct frames in the shared procedural "
                              "stream (cycled per client)")
    p_serve.add_argument("--width", type=int, default=48)
    p_serve.add_argument("--height", type=int, default=36)
    p_serve.add_argument("--fps", type=float, default=10.0,
                         help="median client frame rate (virtual fps)")
    p_serve.add_argument("--fps-sigma", dest="fps_sigma", type=float,
                         default=0.75,
                         help="log-normal dispersion of client frame rates")
    p_serve.add_argument("--mean-interarrival", dest="mean_interarrival",
                         type=float, default=0.05,
                         help="mean virtual gap between client arrivals (s)")
    p_serve.add_argument("--arrival-shape", dest="arrival_shape", type=float,
                         default=1.5,
                         help="Pareto tail index of client arrivals (>1)")
    p_serve.add_argument("--speed", type=float, default=1.0,
                         help="virtual seconds offered per wall second "
                              "(>1 = overload knob)")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--queue-capacity", dest="queue_capacity", type=int,
                         default=8,
                         help="bounded per-session ingress queue length")
    p_serve.add_argument("--frames-per-round", dest="frames_per_round",
                         type=int, default=4,
                         help="per-session frame budget per scheduling round")
    p_serve.add_argument("--drop-policy", dest="drop_policy",
                         choices=("oldest", "newest"), default="oldest",
                         help="which frame dies when an ingress queue is "
                              "full")
    p_serve.add_argument("--threaded", action="store_true",
                         help="run the scheduler on its own thread "
                              "(default: synchronous stepping)")
    p_serve.add_argument("--set", metavar="NAME=VALUE", action="append",
                         type=_parse_override,
                         help="override an algorithm parameter")
    p_serve.add_argument("--stats-out", dest="stats_out", metavar="PATH",
                         default="",
                         help="write the JSON stats report here")
    p_serve.add_argument("--trace", metavar="PATH", default="",
                         help="write a telemetry trace of the serving run")
    p_serve.set_defaults(func=_cmd_serve)

    p_dse = sub.add_parser("dse", help="design-space exploration (Fig 2)")
    p_dse.add_argument("--samples", type=int, default=150)
    p_dse.add_argument("--iterations", type=int, default=10)
    p_dse.add_argument("--seed", type=int, default=0)
    p_dse.add_argument("--csv", default="",
                       help="also write every sample to this CSV file")
    p_dse.add_argument("--trace", metavar="PATH", default="",
                       help="write a telemetry trace of the exploration")
    p_dse.add_argument("--workers", type=int, default=1,
                       help="evaluate each batch over N worker processes "
                            "(results identical at any worker count)")
    p_dse.add_argument("--store", metavar="PATH", default="",
                       help="persist every evaluation to this JSONL store "
                            "(cross-run memoization)")
    p_dse.add_argument("--resume", action="store_true",
                       help="reuse an existing --store from a previous "
                            "(possibly killed) run")
    p_dse.add_argument("--no-backend-dimension", action="store_true",
                       help="explore only the algorithmic knobs, without "
                            "kernel_backend as a categorical dimension")
    p_dse.set_defaults(func=_cmd_dse)

    p_trace = sub.add_parser("trace", help="inspect telemetry trace files")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_summ = trace_sub.add_parser(
        "summarize", help="per-kernel p50/p95/max from a trace file"
    )
    p_summ.add_argument("trace_file", help="trace written by --trace "
                                           "(Chrome JSON or JSONL)")
    p_summ.set_defaults(func=_cmd_trace_summarize)

    p_crowd = sub.add_parser("crowd", help="83-device campaign (Fig 3)")
    p_crowd.add_argument("--seed", type=int, default=0)
    p_crowd.add_argument("--workers", type=int, default=1,
                         help="simulate devices over N worker processes")
    p_crowd.set_defaults(func=_cmd_crowd)

    p_eval = sub.add_parser(
        "evaluate", help="ATE/RPE/drift between two TUM-format trajectories"
    )
    p_eval.add_argument("estimated", help="estimated trajectory (TUM text)")
    p_eval.add_argument("reference", help="ground-truth trajectory (TUM text)")
    p_eval.add_argument("--delta", type=int, default=1)
    p_eval.add_argument("--max-dt", dest="max_dt", type=float, default=0.02)
    p_eval.set_defaults(func=_cmd_evaluate)

    p_dev = sub.add_parser("devices", help="list the device database")
    p_dev.set_defaults(func=_cmd_devices)

    p_be = sub.add_parser("backends", help="backend comparison (E5)")
    p_be.set_defaults(func=_cmd_backends)

    p_arch = sub.add_parser(
        "arch", help="architecture policy: layers, call graph, effects"
    )
    arch_sub = p_arch.add_subparsers(dest="arch_command")
    arch_common = {"nargs": "*", "default": [],
                   "help": "files or directories (default: src/repro)"}

    p_arch_show = arch_sub.add_parser(
        "show", help="print the layer diagram with effect budgets")
    p_arch_check = arch_sub.add_parser(
        "check", help="run rules RPR008-010 (exit: 0 clean, 1 findings, "
                      "2 internal error)")
    p_arch_check.add_argument("paths", **arch_common)
    p_arch_graph = arch_sub.add_parser(
        "graph", help="export the call graph")
    p_arch_graph.add_argument("paths", **arch_common)
    p_arch_graph.add_argument("--format", choices=("json", "dot"),
                              default="json")
    p_arch_graph.add_argument("--granularity",
                              choices=("module", "function"),
                              default="module")
    p_arch_eff = arch_sub.add_parser(
        "effects", help="print inferred per-function effect sets")
    p_arch_eff.add_argument("paths", **arch_common)
    p_arch_eff.add_argument("--prefix", default="",
                            help="only functions whose qualified name "
                                 "starts with this prefix")
    p_arch_snap = arch_sub.add_parser(
        "snapshot", help="write the committed effect snapshot")
    p_arch_snap.add_argument("paths", **arch_common)
    p_arch_snap.add_argument("--output", default="ARCH_EFFECTS.json")
    p_arch_diff = arch_sub.add_parser(
        "diff", help="diff current effects against the snapshot "
                     "(exit 1 on new effects)")
    p_arch_diff.add_argument("paths", **arch_common)
    p_arch_diff.add_argument("--against", default="ARCH_EFFECTS.json")
    for sp in (p_arch, p_arch_show, p_arch_check, p_arch_graph, p_arch_eff,
               p_arch_snap, p_arch_diff):
        sp.add_argument("--policy", default="ARCHITECTURE.toml",
                        help="architecture policy file")
        sp.set_defaults(func=_cmd_arch)
    p_arch.set_defaults(paths=[])

    p_races = sub.add_parser(
        "races", help="static concurrency verification (rules RPR014-016): "
                      "lockset races, lock order, wait discipline"
    )
    races_sub = p_races.add_subparsers(dest="races_command")
    races_common = {"nargs": "*", "default": [],
                    "help": "files or directories (default: src/repro)"}
    p_races_check = races_sub.add_parser(
        "check", help="run RPR014/15/16 and validate the [concurrency] "
                      "policy names (exit: 0 clean, 1 findings, 2 error)")
    p_races_check.add_argument("paths", **races_common)
    p_races_show = races_sub.add_parser(
        "show", help="print thread contexts, locks, field verdicts and "
                     "the lock-order graph")
    p_races_show.add_argument("paths", **races_common)
    p_races_report = races_sub.add_parser(
        "report", help="emit the full concurrency state as JSON")
    p_races_report.add_argument("paths", **races_common)
    p_races_snap = races_sub.add_parser(
        "snapshot", help="write the committed concurrency snapshot")
    p_races_snap.add_argument("paths", **races_common)
    p_races_snap.add_argument("--output", default="CONCURRENCY.json")
    p_races_diff = races_sub.add_parser(
        "diff", help="compare current concurrency state against the "
                     "snapshot (exit 1 on new facts)")
    p_races_diff.add_argument("paths", **races_common)
    p_races_diff.add_argument("--against", default="CONCURRENCY.json")
    for sp in (p_races, p_races_check, p_races_show, p_races_report,
               p_races_snap, p_races_diff):
        sp.set_defaults(func=_cmd_races)
    p_races.set_defaults(paths=[])

    p_graph = sub.add_parser(
        "graph", help="stage-graph pipelines: check, show, diff"
    )
    graph_sub = p_graph.add_subparsers(dest="graph_command", required=True)
    p_g_check = graph_sub.add_parser(
        "check", help="compile every registered graph definition "
                      "(exit: 0 clean, 1 findings, 2 internal error)")
    p_g_check.add_argument("--graph", default="",
                           help="check only this registered graph")
    p_g_check.add_argument("--policy", default="ARCHITECTURE.toml",
                           help="architecture policy for effect budgets")
    p_g_check.set_defaults(func=_cmd_graph_check)
    p_g_show = graph_sub.add_parser(
        "show", help="print a graph's schedule, nodes, edges, taps")
    p_g_show.add_argument("graph", help="registered graph name "
                                        "(e.g. kfusion)")
    p_g_show.set_defaults(func=_cmd_graph_show)
    p_g_diff = graph_sub.add_parser(
        "diff", help="differential run: legacy vs graph pipeline "
                     "(exit 1 on divergence)")
    p_g_diff.add_argument("--algorithm", default="kfusion",
                          choices=("kfusion", "icp_odometry"))
    p_g_diff.add_argument("--dataset", default="lr_kt0",
                          choices=dataset_names())
    p_g_diff.add_argument("--frames", type=int, default=10)
    p_g_diff.add_argument("--width", type=int, default=80)
    p_g_diff.add_argument("--height", type=int, default=60)
    p_g_diff.add_argument("--seed", type=int, default=0)
    p_g_diff.add_argument("--kernel-backend", dest="kernel_backend",
                          default=None, choices=kernel_backend_names(),
                          help="kernel backend both pipelines run")
    p_g_diff.add_argument("--set", metavar="NAME=VALUE", action="append",
                          type=_parse_override,
                          help="override an algorithm parameter")
    p_g_diff.set_defaults(func=_cmd_graph_diff)

    p_lint = sub.add_parser(
        "lint", help="repo-specific static analysis (rules RPR001-RPR010 "
                     "and RPR014-016)"
    )
    p_lint.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyse "
                             "(default: src/repro)")
    p_lint.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format")
    p_lint.add_argument("--select", default="",
                        help="comma-separated rule ids to run "
                             "(e.g. RPR001,RPR003)")
    p_lint.add_argument("--baseline", default=".reprolint.json",
                        help="baseline file of suppressed known findings")
    p_lint.add_argument("--write-baseline", action="store_true",
                        help="snapshot current findings into the baseline "
                             "and exit 0")
    p_lint.add_argument("--migrate-baseline", action="store_true",
                        help="rewrite the baseline to the current "
                             "fingerprint format and exit 0")
    p_lint.set_defaults(func=_cmd_lint)

    p_df = sub.add_parser(
        "dataflow", help="static dataflow verification of registered "
                         "stage graphs (rules RPR011-RPR013)"
    )
    df_sub = p_df.add_subparsers(dest="dataflow_command", required=True)
    p_df_check = df_sub.add_parser(
        "check", help="verify shape/dtype unification, kernel-contract "
                      "consistency, and arena liveness for every "
                      "registered graph (exit 0 clean / 1 findings / "
                      "2 internal)")
    p_df_check.add_argument("paths", nargs="*", default=["src/repro"],
                            help="first-party sources for the static "
                                 "call graph (default: src/repro)")
    p_df_check.add_argument("--format", choices=("text", "json"),
                            default="text", help="report format")
    p_df_check.add_argument("--baseline", default=".reprolint.json",
                            help="fingerprint baseline of accepted "
                                 "findings")
    p_df_check.set_defaults(func=_cmd_dataflow_check)
    p_df_show = df_sub.add_parser(
        "show", help="print each graph's ports (normalized contracts), "
                     "solved symbolic dims, and arena regions")
    p_df_show.add_argument("graph", nargs="?", default="",
                           help="registered graph name (default: all)")
    p_df_show.add_argument("--format", choices=("text", "json"),
                           default="text", help="output format")
    p_df_show.set_defaults(func=_cmd_dataflow_show)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
