"""From-scratch machine learning: CART trees, random forests, rules."""

from .forest import RandomForestClassifier, RandomForestRegressor
from .rules import Condition, Rule, extract_rules, format_rules
from .tree import DecisionTree, DecisionTreeClassifier, DecisionTreeRegressor
from .validation import (
    accuracy,
    cross_val_r2,
    mse,
    r2_score,
    spearman_rank_correlation,
    train_test_split,
)

__all__ = [
    "RandomForestClassifier",
    "RandomForestRegressor",
    "Condition",
    "Rule",
    "extract_rules",
    "format_rules",
    "DecisionTree",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "accuracy",
    "cross_val_r2",
    "mse",
    "r2_score",
    "spearman_rank_correlation",
    "train_test_split",
]
