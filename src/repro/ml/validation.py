"""Model-quality utilities: splits, scores, cross-validation.

Used by the ML ablation bench (forest quality vs #trees/#samples) and by
tests that assert the from-scratch forest actually learns the response
surfaces it is used on.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError


def train_test_split(
    X: np.ndarray, y: np.ndarray, test_fraction: float = 0.25, seed: int = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into train/test."""
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y) or len(X) < 2:
        raise ModelError("need >= 2 matching samples to split")
    if not 0.0 < test_fraction < 1.0:
        raise ModelError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(X))
    n_test = max(1, int(round(len(X) * test_fraction)))
    test = order[:n_test]
    train = order[n_test:]
    if len(train) == 0:
        raise ModelError("split left no training samples")
    return X[train], X[test], y[train], y[test]


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape or y_true.size == 0:
        raise ModelError("shape mismatch or empty arrays")
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot < 1e-18:
        return 1.0 if ss_res < 1e-18 else 0.0
    return 1.0 - ss_res / ss_tot


def mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    return float(np.mean((y_true - y_pred) ** 2))


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.size == 0:
        raise ModelError("shape mismatch or empty arrays")
    return float(np.mean(y_true == y_pred))


def spearman_rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Rank correlation — how well a surrogate preserves orderings."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.size < 2:
        raise ModelError("need >= 2 matching values")
    ra = _ranks(a)
    rb = _ranks(b)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt((ra**2).sum() * (rb**2).sum())
    if denom < 1e-18:
        return 0.0
    return float((ra * rb).sum() / denom)


def _ranks(x: np.ndarray) -> np.ndarray:
    """Average ranks (ties averaged)."""
    order = np.argsort(x, kind="stable")
    ranks = np.empty(len(x), dtype=float)
    i = 0
    while i < len(x):
        j = i
        while j + 1 < len(x) and x[order[j + 1]] == x[order[i]]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0
        i = j + 1
    return ranks


def cross_val_r2(model_factory, X: np.ndarray, y: np.ndarray,
                 folds: int = 4, seed: int = 0) -> list[float]:
    """K-fold cross-validated R² for a regressor factory."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if folds < 2 or len(X) < folds:
        raise ModelError("need >= 2 folds and enough samples")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(X))
    scores = []
    for k in range(folds):
        test = order[k::folds]
        train = np.setdiff1d(order, test)
        model = model_factory()
        model.fit(X[train], y[train])
        scores.append(r2_score(y[test], model.predict(X[test])))
    return scores
