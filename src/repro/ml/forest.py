"""Random forests on top of the CART trees.

HyperMapper's active learning is driven by a random-forest predictor: the
ensemble mean is the prediction and the spread across trees is the
uncertainty signal used to pick informative samples.  Both are exposed
here (:meth:`RandomForestRegressor.predict_with_std`).
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .tree import DecisionTreeClassifier, DecisionTreeRegressor


class _Forest:
    """Shared bootstrap-aggregation machinery."""

    tree_cls = None  # set by subclasses

    def __init__(
        self,
        n_trees: int = 32,
        max_depth: int = 12,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        random_state: int = 0,
    ):
        if n_trees < 1:
            raise ModelError("need at least one tree")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.trees: list = []

    def fit(self, X: np.ndarray, y: np.ndarray):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if len(X) != len(y) or len(X) == 0:
            raise ModelError("X and y must be non-empty and the same length")
        rng = np.random.default_rng(self.random_state)
        self.trees = []
        n = len(X)
        for t in range(self.n_trees):
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            tree = self.tree_cls(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[idx], y[idx])
            self.trees.append(tree)
        return self

    def _require_fitted(self) -> None:
        if not self.trees:
            raise ModelError("forest is not fitted")

    def _all_predictions(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return np.stack([t.predict(X) for t in self.trees])


class RandomForestRegressor(_Forest):
    """Bagged regression forest with ensemble-spread uncertainty."""

    tree_cls = DecisionTreeRegressor

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._all_predictions(X).mean(axis=0)

    def predict_with_std(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Ensemble mean and standard deviation (the acquisition signal)."""
        preds = self._all_predictions(X)
        return preds.mean(axis=0), preds.std(axis=0)

    def feature_importances(self) -> np.ndarray:
        """Impurity-decrease importances, normalised to sum to 1."""
        self._require_fitted()
        d = self.trees[0].n_features_
        imp = np.zeros(d)
        for tree in self.trees:
            for node in tree.nodes:
                if node.feature >= 0:
                    left = tree.nodes[node.left]
                    right = tree.nodes[node.right]
                    decrease = node.n_samples * node.impurity - (
                        left.n_samples * left.impurity
                        + right.n_samples * right.impurity
                    )
                    imp[node.feature] += max(decrease, 0.0)
        total = imp.sum()
        return imp / total if total > 0 else imp


class RandomForestClassifier(_Forest):
    """Bagged classification forest (majority vote)."""

    tree_cls = DecisionTreeClassifier

    def predict(self, X: np.ndarray) -> np.ndarray:
        preds = self._all_predictions(X).astype(int)
        out = np.empty(preds.shape[1], dtype=int)
        for j in range(preds.shape[1]):
            vals, counts = np.unique(preds[:, j], return_counts=True)
            out[j] = vals[np.argmax(counts)]
        return out

    def predict_proba(self, X: np.ndarray, cls: int = 1) -> np.ndarray:
        """Fraction of trees voting for ``cls``."""
        preds = self._all_predictions(X).astype(int)
        return (preds == cls).mean(axis=0)
