"""Rule extraction from decision trees — Figure 2's "Knowledge" box.

The right panel of the paper's Figure 2 shows human-readable conditions
("Volume resolution < 96", "Compute size ratio > 6", ...) explaining which
parameter regions are accurate / fast / power-efficient.  HyperMapper gets
them by training a decision tree on labelled DSE samples and reading the
root-to-leaf paths.  :func:`extract_rules` does exactly that: every leaf
predicting the positive class becomes a conjunction of threshold
conditions, simplified to one interval per feature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from .tree import DecisionTreeClassifier, _NO_CHILD


@dataclass(frozen=True)
class Condition:
    """A single threshold condition ``feature <= / > value``."""

    feature: str
    op: str  # "<=" or ">"
    threshold: float

    def __str__(self) -> str:
        return f"{self.feature} {self.op} {self.threshold:.4g}"

    def holds(self, value: float) -> bool:
        return value <= self.threshold if self.op == "<=" else value > self.threshold


@dataclass(frozen=True)
class Rule:
    """A conjunction of conditions implying the positive class.

    Attributes:
        conditions: simplified per-feature interval conditions.
        support: training samples reaching the leaf.
        confidence: purity proxy of the leaf for the positive class
            (1 - Gini-based impurity share; exact purity is not stored in
            the flat tree, so this reports the leaf's majority agreement).
    """

    conditions: tuple[Condition, ...]
    support: int
    confidence: float

    def __str__(self) -> str:
        if not self.conditions:
            return "(always)"
        return " AND ".join(str(c) for c in self.conditions)

    def matches(self, sample: dict) -> bool:
        """Whether a ``{feature: value}`` mapping satisfies the rule."""
        return all(c.holds(float(sample[c.feature])) for c in self.conditions)


def extract_rules(
    tree: DecisionTreeClassifier,
    feature_names: list[str],
    positive_class: int = 1,
    min_support: int = 1,
) -> list[Rule]:
    """All root-to-leaf paths of ``tree`` that predict ``positive_class``.

    Rules are sorted by support (most general first); per-feature
    conditions along a path are merged into the tightest interval.
    """
    if not tree.nodes:
        raise ModelError("tree is not fitted")
    if len(feature_names) != tree.n_features_:
        raise ModelError(
            f"{len(feature_names)} names for {tree.n_features_} features"
        )

    rules: list[Rule] = []

    def walk(node_id: int, path: list[tuple[int, str, float]]):
        node = tree.nodes[node_id]
        if node.feature == _NO_CHILD:
            if int(node.value) == positive_class and node.n_samples >= min_support:
                rules.append(
                    Rule(
                        conditions=_simplify(path, feature_names),
                        support=node.n_samples,
                        confidence=1.0 - node.impurity,
                    )
                )
            return
        walk(node.left, path + [(node.feature, "<=", node.threshold)])
        walk(node.right, path + [(node.feature, ">", node.threshold)])

    walk(0, [])
    rules.sort(key=lambda r: -r.support)
    return rules


def _simplify(
    path: list[tuple[int, str, float]], feature_names: list[str]
) -> tuple[Condition, ...]:
    """Merge repeated conditions on one feature into a tight interval."""
    upper: dict[int, float] = {}  # feature -> tightest "<=" bound
    lower: dict[int, float] = {}  # feature -> tightest ">" bound
    for feature, op, threshold in path:
        if op == "<=":
            upper[feature] = min(upper.get(feature, np.inf), threshold)
        else:
            lower[feature] = max(lower.get(feature, -np.inf), threshold)
    conditions = []
    for f in sorted(set(upper) | set(lower)):
        if f in lower:
            conditions.append(Condition(feature_names[f], ">", lower[f]))
        if f in upper:
            conditions.append(Condition(feature_names[f], "<=", upper[f]))
    return tuple(conditions)


def format_rules(rules: list[Rule], label: str = "") -> str:
    """Human-readable rendering of a rule list (the Fig 2 right panel)."""
    lines = []
    if label:
        lines.append(label)
    if not rules:
        lines.append("  (no rules)")
    for rule in rules:
        lines.append(
            f"  IF {rule} THEN positive"
            f"   [support={rule.support}, confidence={rule.confidence:.2f}]"
        )
    return "\n".join(lines) + "\n"
