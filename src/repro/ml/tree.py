"""CART decision trees (regression and classification), NumPy only.

HyperMapper's predictive model is a scikit-learn random forest; the
execution environment has no scikit-learn, so the trees underneath are
implemented here from scratch: binary splits on numeric features chosen by
variance reduction (regression) or Gini impurity (classification), grown
depth-first with the usual stopping rules.

Trees store their structure in flat arrays, which keeps prediction
vectorised and makes rule extraction (``repro.ml.rules``) straightforward.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError

_NO_CHILD = -1


@dataclass
class _Node:
    feature: int = _NO_CHILD  # -1 marks a leaf
    threshold: float = 0.0
    left: int = _NO_CHILD
    right: int = _NO_CHILD
    value: float = 0.0  # mean target (regression) / majority class id
    n_samples: int = 0
    impurity: float = 0.0


class DecisionTree:
    """Base CART tree; use the Regressor/Classifier subclasses.

    Args:
        max_depth: depth limit (root = depth 0).
        min_samples_split: do not split nodes smaller than this.
        min_samples_leaf: children must keep at least this many samples.
        max_features: features considered per split: ``None`` = all,
            ``"sqrt"``, or an int.
        random_state: seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state: int | None = None,
    ):
        if max_depth < 1:
            raise ModelError("max_depth must be >= 1")
        if min_samples_split < 2 or min_samples_leaf < 1:
            raise ModelError("invalid min_samples settings")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.nodes: list[_Node] = []
        self.n_features_: int | None = None

    # -- subclass hooks ------------------------------------------------------
    def _impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _leaf_value(self, y: np.ndarray) -> float:
        raise NotImplementedError

    # -- fitting ----------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTree":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ModelError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y) or len(X) == 0:
            raise ModelError("X and y must be non-empty and the same length")
        self.n_features_ = X.shape[1]
        self.nodes = []
        rng = np.random.default_rng(self.random_state)
        self._grow(X, y, depth=0, rng=rng)
        return self

    def _n_split_features(self) -> int:
        assert self.n_features_ is not None
        if self.max_features is None:
            return self.n_features_
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self.n_features_)))
        return max(1, min(int(self.max_features), self.n_features_))

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int,
              rng: np.random.Generator) -> int:
        node_id = len(self.nodes)
        node = _Node(
            value=self._leaf_value(y),
            n_samples=len(y),
            impurity=self._impurity(y),
        )
        self.nodes.append(node)

        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or node.impurity <= 1e-12
        ):
            return node_id

        split = self._best_split(X, y, rng)
        if split is None:
            return node_id
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1, rng)
        node.right = self._grow(X[~mask], y[~mask], depth + 1, rng)
        return node_id

    def _best_split(self, X: np.ndarray, y: np.ndarray,
                    rng: np.random.Generator):
        n, d = X.shape
        k = self._n_split_features()
        features = (
            rng.choice(d, size=k, replace=False) if k < d else np.arange(d)
        )
        parent_impurity = self._impurity(y)
        best_gain = 1e-12
        best = None
        for f in features:
            order = np.argsort(X[:, f], kind="stable")
            xs = X[order, f]
            ys = y[order]
            # Candidate split positions i (left = [:i]): distinct values,
            # respecting the leaf-size floor.
            candidates = np.flatnonzero(np.diff(xs) > 1e-12) + 1
            candidates = candidates[
                (candidates >= self.min_samples_leaf)
                & (candidates <= n - self.min_samples_leaf)
            ]
            if candidates.size == 0:
                continue
            # Weighted child impurity for every split position, vectorised
            # via prefix statistics (see subclasses).
            weighted = self._split_impurities(ys, candidates)
            gains = parent_impurity - weighted / n
            j = int(np.argmax(gains))
            if gains[j] > best_gain:
                i = int(candidates[j])
                best_gain = float(gains[j])
                best = (int(f), float((xs[i - 1] + xs[i]) / 2.0))
        return best

    def _split_impurities(self, ys: np.ndarray,
                          candidates: np.ndarray) -> np.ndarray:
        """``n_left*imp_left + n_right*imp_right`` for each split position.

        Default implementation loops; subclasses provide O(n) versions.
        """
        n = len(ys)
        out = np.empty(len(candidates))
        for j, i in enumerate(candidates):
            out[j] = i * self._impurity(ys[:i]) + (n - i) * self._impurity(ys[i:])
        return out

    # -- prediction -------------------------------------------------------------
    def _leaf_ids(self, X: np.ndarray) -> np.ndarray:
        if not self.nodes:
            raise ModelError("tree is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ModelError(
                f"X must be (N, {self.n_features_}), got {X.shape}"
            )
        ids = np.zeros(len(X), dtype=int)
        # Route batches of samples down the tree node by node.
        stack: list[tuple[int, np.ndarray]] = [(0, np.arange(len(X)))]
        while stack:
            node_id, idx = stack.pop()
            if idx.size == 0:
                continue
            node = self.nodes[node_id]
            if node.feature == _NO_CHILD:
                ids[idx] = node_id
                continue
            mask = X[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return ids

    def predict(self, X: np.ndarray) -> np.ndarray:
        ids = self._leaf_ids(X)
        return np.array([self.nodes[i].value for i in ids])

    @property
    def n_leaves(self) -> int:
        return sum(1 for n in self.nodes if n.feature == _NO_CHILD)

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if not self.nodes:
            raise ModelError("tree is not fitted")

        def _d(i: int) -> int:
            node = self.nodes[i]
            if node.feature == _NO_CHILD:
                return 0
            return 1 + max(_d(node.left), _d(node.right))

        return _d(0)


class DecisionTreeRegressor(DecisionTree):
    """CART regression tree (variance-reduction splits, mean leaves)."""

    def _impurity(self, y: np.ndarray) -> float:
        return float(np.var(y)) if len(y) else 0.0

    def _leaf_value(self, y: np.ndarray) -> float:
        return float(np.mean(y))

    def _split_impurities(self, ys: np.ndarray,
                          candidates: np.ndarray) -> np.ndarray:
        # n*var = sum(y^2) - (sum y)^2 / n, via prefix sums.
        n = len(ys)
        cs = np.concatenate([[0.0], np.cumsum(ys)])
        cs2 = np.concatenate([[0.0], np.cumsum(ys * ys)])
        i = candidates.astype(int)
        left = cs2[i] - cs[i] ** 2 / i
        nr = n - i
        right = (cs2[n] - cs2[i]) - (cs[n] - cs[i]) ** 2 / nr
        return left + right


class DecisionTreeClassifier(DecisionTree):
    """CART classification tree (Gini splits, majority leaves).

    Class labels must be non-negative integers.
    """

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        y = np.asarray(y)
        if y.size and (np.any(y < 0) or np.any(y != np.round(y))):
            raise ModelError("classifier labels must be non-negative integers")
        self.classes_ = np.unique(y.astype(int))
        return super().fit(X, y)

    def _impurity(self, y: np.ndarray) -> float:
        if len(y) == 0:
            return 0.0
        _, counts = np.unique(y, return_counts=True)
        p = counts / len(y)
        return float(1.0 - np.sum(p * p))

    def _split_impurities(self, ys: np.ndarray,
                          candidates: np.ndarray) -> np.ndarray:
        # Gini via per-class prefix counts:
        # n*gini = n - sum_c count_c^2 / n.
        n = len(ys)
        classes = np.unique(ys)
        i = candidates.astype(int)
        left_sq = np.zeros(len(candidates))
        right_sq = np.zeros(len(candidates))
        for c in classes:
            pc = np.concatenate([[0.0], np.cumsum(ys == c)])
            lc = pc[i]
            rc = pc[n] - pc[i]
            left_sq += lc * lc
            right_sq += rc * rc
        nr = n - i
        return (i - left_sq / i) + (nr - right_sq / nr)

    def _leaf_value(self, y: np.ndarray) -> float:
        vals, counts = np.unique(y, return_counts=True)
        return float(vals[np.argmax(counts)])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return super().predict(X).astype(int)

    def leaf_class_fraction(self, X: np.ndarray, cls: int) -> np.ndarray:
        """Per-sample purity proxy: 1.0 if the leaf predicts ``cls``."""
        return (self.predict(X) == cls).astype(float)
