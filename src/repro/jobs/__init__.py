"""Parallel evaluation engine (S16): pool, store, batch runner.

The scale-out layer under the paper's two embarrassingly parallel
workloads — HyperMapper's thousands of configuration evaluations and
the 83-device crowd campaign.  Three pieces:

* :mod:`~repro.jobs.pool` — a fault-tolerant ``multiprocessing`` worker
  pool (per-worker ``SeedSequence`` RNG streams, per-job timeouts,
  bounded crash retries, serial in-process fallback).  The *only* place
  in the tree allowed to touch ``multiprocessing`` (lint rule RPR006).
* :mod:`~repro.jobs.store` — a content-addressed on-disk evaluation
  store (canonical config hash → JSONL record with provenance header)
  giving cross-run memoization and ``--resume``.
* :mod:`~repro.jobs.runner` — the batch submit/gather API the DSE and
  campaign loops hold: store lookup → pool fan-out → persist → ordered
  results, with per-worker telemetry merged into the parent tracer.

Quickstart::

    from repro.jobs import EvaluationStore, JobRunner

    store = EvaluationStore.open("dse.jsonl", context=ev.fingerprint())
    with JobRunner(workers=4, store=store) as runner:
        result = HyperMapper(space, ev, runner=runner).run()
"""

from .hashing import canonical_config, config_hash
from .pool import (
    JobOutcome,
    WorkerPool,
    worker_id,
    worker_rng,
    worker_shared,
)
from .runner import JobRunner, evaluate_batch
from .store import STORE_MAGIC, STORE_VERSION, EvaluationStore

__all__ = [
    "EvaluationStore",
    "JobOutcome",
    "JobRunner",
    "STORE_MAGIC",
    "STORE_VERSION",
    "WorkerPool",
    "canonical_config",
    "config_hash",
    "evaluate_batch",
    "worker_id",
    "worker_rng",
    "worker_shared",
]
