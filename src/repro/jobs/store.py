"""The persistent evaluation store: content-addressed, append-only JSONL.

Cross-run memoization and ``--resume`` for the DSE: every completed
:class:`~repro.hypermapper.evaluator.Evaluation` is appended to a JSONL
file keyed by the canonical configuration hash
(:func:`~repro.jobs.hashing.config_hash`).  A killed exploration leaves
a valid store behind (records are flushed per append; a torn final line
from a hard kill is detected and ignored), so rerunning the same search
re-evaluates only the configurations the first run never reached.

File format — line 1 is the header, every other line one record::

    {"store": "repro.jobs/evaluation-store", "version": 1,
     "context": {...evaluator fingerprint...},
     "git_sha": "...", "platform": {...}}
    {"key": "<sha256>", "evaluation": {...Evaluation.to_dict()...}}

The *context* is the evaluator's fingerprint (sequence, device, seed,
backend...): an evaluation is only reusable under the exact conditions
that produced it, so :meth:`EvaluationStore.open` refuses a store whose
context does not match — a cached ATE from a different sequence would
silently poison a resumed search.

Duplicate keys are legal (last record wins), which makes concurrent
append-mostly use and crash-rerun overlaps harmless.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, Mapping

from ..errors import JobError
from ..hypermapper.evaluator import Evaluation
from ..telemetry import current_tracer, git_revision, platform_fingerprint
from .hashing import config_hash

STORE_MAGIC = "repro.jobs/evaluation-store"
STORE_VERSION = 1


class EvaluationStore:
    """On-disk memo of configuration-hash → evaluation.

    Use :meth:`open` (creates or loads, verifying the context) rather
    than the constructor.  The store keeps an in-memory index of every
    record, appends new records immediately (flush + fsync), and counts
    its traffic both locally (``hits``/``misses`` attributes) and into
    the current tracer (``dse.cache_hits`` / ``dse.cache_misses`` — the
    same counters the in-memory evaluator cache uses, so a trace shows
    the whole memoization picture in one place).
    """

    def __init__(self, path: str | Path, context: Mapping | None = None):
        self.path = Path(path)
        self.context = dict(context) if context is not None else None
        self._index: dict[str, Evaluation] = {}
        self._file = None
        self.hits = 0
        self.misses = 0
        self.corrupt_lines = 0

    # -- lifecycle ----------------------------------------------------------
    @classmethod
    def open(cls, path: str | Path, context: Mapping | None = None,
             resume: bool = True) -> "EvaluationStore":
        """Create a new store or load an existing one.

        Args:
            path: the JSONL file (parent directory must exist).
            context: evaluator fingerprint the records must match.
            resume: when ``False``, an existing non-empty store at
                ``path`` is an error — the caller asked for a fresh run
                and silently reusing old numbers (or clobbering them)
                would both be wrong.  Pass ``True`` to load it.
        """
        store = cls(path, context)
        if store.path.exists() and store.path.stat().st_size > 0:
            if not resume:
                raise JobError(
                    f"evaluation store {path} already exists; pass "
                    f"--resume to reuse it or delete it for a fresh run"
                )
            store._load()
        else:
            store._create()
        return store

    def _create(self) -> None:
        header = {
            "store": STORE_MAGIC,
            "version": STORE_VERSION,
            "context": self.context,
            "git_sha": git_revision(),
            "platform": platform_fingerprint(),
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a")
        except OSError as exc:
            raise JobError(f"cannot create store {self.path}: {exc}") from exc
        self._append_line(header)

    def _load(self) -> None:
        try:
            lines = self.path.read_text().splitlines()
        except OSError as exc:
            raise JobError(f"cannot read store {self.path}: {exc}") from exc
        if not lines:
            raise JobError(f"store {self.path} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise JobError(
                f"store {self.path} has an unreadable header: {exc}"
            ) from exc
        if header.get("store") != STORE_MAGIC:
            raise JobError(f"{self.path} is not an evaluation store")
        if header.get("version") != STORE_VERSION:
            raise JobError(
                f"store {self.path} is version {header.get('version')}, "
                f"this code reads version {STORE_VERSION}"
            )
        stored_context = header.get("context")
        if (self.context is not None and stored_context is not None
                and stored_context != self.context):
            raise JobError(
                f"store {self.path} was built under a different evaluator "
                f"context:\n  stored: {stored_context}\n  "
                f"current: {self.context}\nits evaluations are not "
                f"reusable here; use a different --store path"
            )
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                evaluation = Evaluation.from_dict(record["evaluation"])
                key = record["key"]
            except Exception:
                # A torn final line from a killed run is expected; count
                # it and move on rather than refusing the whole store.
                self.corrupt_lines += 1
                continue
            self._index[key] = evaluation
        try:
            self._file = open(self.path, "a")
        except OSError as exc:
            raise JobError(f"cannot append to store {self.path}: {exc}") from exc

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "EvaluationStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- record access ------------------------------------------------------
    def _append_line(self, payload: dict) -> None:
        if self._file is None:
            raise JobError(f"store {self.path} is closed")
        try:
            self._file.write(json.dumps(payload, sort_keys=True) + "\n")
            self._file.flush()
            os.fsync(self._file.fileno())
        except OSError as exc:
            raise JobError(f"cannot write store {self.path}: {exc}") from exc

    def get(self, configuration: Mapping) -> Evaluation | None:
        """The stored evaluation of ``configuration``, or ``None``."""
        evaluation = self._index.get(config_hash(configuration))
        tracer = current_tracer()
        if evaluation is not None:
            self.hits += 1
            tracer.count("dse.cache_hits")
        else:
            self.misses += 1
            tracer.count("dse.cache_misses")
        return evaluation

    def put(self, evaluation: Evaluation) -> str:
        """Persist one evaluation (keyed by its configuration); returns key."""
        key = config_hash(evaluation.configuration)
        self._append_line({"key": key, "evaluation": evaluation.to_dict()})
        self._index[key] = evaluation
        return key

    def __contains__(self, configuration: Mapping) -> bool:
        return config_hash(configuration) in self._index

    def __len__(self) -> int:
        return len(self._index)

    def keys(self) -> Iterator[str]:
        return iter(self._index)

    def evaluations(self) -> list[Evaluation]:
        """Every stored evaluation (index order: insertion, last-wins)."""
        return list(self._index.values())
