"""Canonical configuration hashing — one key function for every cache.

The DSE revisits configurations constantly: the optimizer's ``seen``
set, the evaluator's in-memory memo, and the on-disk evaluation store
all need to agree on when two configuration dicts are *the same point*
of the design space.  Before this module each layer invented its own
key (``tuple(sorted(items))`` here, ``repr(sorted(...))`` there), which
breaks silently the moment one layer sees ``numpy.int64(128)`` and
another plain ``128``.

:func:`canonical_config` normalises a configuration into a plain,
JSON-stable dict (sorted keys, numpy scalars unwrapped, ints kept
integral); :func:`config_hash` is its SHA-256.  Both the in-memory and
on-disk layers key on this hash and nothing else.
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping

from ..errors import JobError


def _canonical_value(name: str, value):
    """Normalise one parameter value for hashing.

    numpy scalars carry dtype baggage (``np.int64(4) != 4`` under
    ``repr``); booleans are kept distinct from ints (``True`` is a
    different design point than ``1`` only if the space says so, but
    hashing must not conflate them with integer knobs).
    """
    if isinstance(value, bool):
        return value
    if hasattr(value, "item"):  # numpy scalar -> python scalar
        value = value.item()
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        # Integral floats hash like the int the sampler would produce
        # for the same knob (5.0 vs 5 is a representation accident, not
        # a different design point).
        return int(value) if value.is_integer() else value
    if isinstance(value, str):
        return value
    raise JobError(
        f"configuration value {name}={value!r} "
        f"({type(value).__name__}) is not hashable as a design point; "
        f"expected int, float, str or bool"
    )


def canonical_config(configuration: Mapping) -> dict:
    """The normalised, key-sorted form of a configuration dict."""
    return {
        name: _canonical_value(name, configuration[name])
        for name in sorted(configuration)
    }


def config_hash(configuration: Mapping) -> str:
    """Content hash of a configuration (hex SHA-256 of canonical JSON)."""
    payload = json.dumps(canonical_config(configuration), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()
