"""Module-level task functions the pool can ship to worker processes.

Worker processes receive jobs by pickle, so every task body must be a
plain module-level function.  Heavy, batch-constant inputs (the
evaluator, precomputed workloads) travel once per worker via the pool's
``shared`` broadcast (:func:`repro.jobs.pool.worker_shared`) rather
than once per job.
"""

from __future__ import annotations

from .pool import worker_shared


def evaluate_configuration(configuration: dict):
    """Evaluate one DSE configuration with the batch's shared evaluator.

    ``shared`` is the evaluator object itself.  Evaluation failures
    (diverged tracking, invalid corners of the space) are already
    reported as ``Evaluation(failed=True)`` by both evaluators, so an
    exception here is an infrastructure problem and propagates to the
    pool's retry/outcome machinery.
    """
    evaluator = worker_shared()
    return evaluator.evaluate(configuration)


def evaluate_configuration_batch(configurations: list):
    """Evaluate a chunk of DSE configurations in one pool job.

    Chunking amortises the per-job dispatch cost (queue round-trips,
    parent poll latency, span shipping) over several evaluations, which
    is what keeps the fan-out profitable when evaluations are short or
    cores are scarce.  Same contract as :func:`evaluate_configuration`,
    element-wise: algorithmic failures come back as
    ``Evaluation(failed=True)`` entries, an exception is infrastructure
    and fails (and retries) the whole chunk.
    """
    evaluator = worker_shared()
    return [evaluator.evaluate(configuration)
            for configuration in configurations]


def simulate_campaign_device(device):
    """One crowd-campaign device: default + tuned runs on its model.

    ``shared`` is ``(default_workloads, tuned_workloads, seed)`` —
    identical for every device, computed once in the parent.
    """
    from ..crowd.campaign import simulate_device

    default_wl, tuned_wl, seed = worker_shared()
    return simulate_device(device, default_wl, tuned_wl, seed)
