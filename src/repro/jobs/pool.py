"""The fault-tolerant worker pool under every parallel fan-out.

One process-based pool, one set of failure semantics, used by the DSE
batch loop and the crowd campaign alike (lint rule RPR006 keeps any
other ``multiprocessing`` use out of the tree):

* **Processes, not threads** — the evaluation workload is NumPy-heavy
  Python; only processes scale it.  Workers are long-lived and pull
  jobs from per-worker queues, so the parent always knows *which*
  worker owns *which* job — that knowledge is what makes per-job
  timeouts and crash attribution possible.
* **Per-worker RNG streams** — worker ``i`` draws from
  ``np.random.SeedSequence(seed).spawn(...)[i]`` (:func:`worker_rng`),
  so no two workers share a stream and reruns with the same pool seed
  reproduce.  Work that must be deterministic *across worker counts*
  should derive randomness from its payload instead — scheduling
  decides which worker runs a job.
* **Bounded retries** — a worker that dies mid-job (crash, OOM kill) or
  exceeds the per-job timeout is terminated and replaced, and the job
  is requeued up to ``max_retries`` times.  A job whose function merely
  *raises* is not retried (the exception is deterministic) — the error
  comes back in its :class:`JobOutcome`.
* **Serial fallback** — ``workers=1`` (or a platform with no usable
  start method) runs jobs in-process with identical semantics minus
  preemption, so callers never need a second code path.
* **Telemetry merge** — each job runs under a fresh child tracer;
  completed spans (stamped with the worker id) and counters ship back
  with the result and are absorbed into the parent's current tracer.

The pool is generic: ``fn`` must be a module-level (picklable) callable
taking one payload argument.  Batch-level conveniences (ordering,
store memoization, progress) live in :mod:`repro.jobs.runner`.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import queue as _queue
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import JobError
from ..telemetry import Tracer, current_tracer, monotonic_s, use_tracer

#: Parent poll interval while waiting on worker results (seconds).
_POLL_S = 0.05
#: Grace given to a worker to exit after a "stop" message (seconds).
_JOIN_S = 2.0

# Per-process worker identity, installed by _worker_main (or by the
# serial fallback in the parent process).
_WORKER_ID: int | None = None
_WORKER_RNG: np.random.Generator | None = None
_WORKER_SHARED = None


def worker_id() -> int | None:
    """This process's worker index, or ``None`` outside a pool job."""
    return _WORKER_ID


def worker_rng() -> np.random.Generator:
    """The per-worker RNG stream (seeded via ``SeedSequence.spawn``)."""
    if _WORKER_RNG is None:
        raise JobError("worker_rng() called outside a WorkerPool job")
    return _WORKER_RNG


def worker_shared():
    """The shared object broadcast to workers for the current batch.

    Heavy read-only inputs (an evaluator, precomputed workloads) are
    shipped once per worker instead of once per job; task functions
    read them back here.
    """
    return _WORKER_SHARED


@dataclass(frozen=True)
class JobOutcome:
    """What happened to one submitted job."""

    index: int
    value: object = None
    error: str | None = None
    attempts: int = 1
    worker: int | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _ship_telemetry(tracer: Tracer, wid: int):
    """Serialize a child tracer for the trip through the result queue."""
    if not tracer.enabled:
        return None
    spans = [
        dataclasses.replace(s, attrs={**s.attrs, "worker": wid})
        for s in tracer.spans
    ]
    return (spans, dict(tracer.counters), dict(tracer.gauges))


def _worker_main(wid: int, seed_seq, task_q, result_q,
                 collect_telemetry: bool) -> None:
    """Worker process body: pull messages, run jobs, ship results."""
    global _WORKER_ID, _WORKER_RNG, _WORKER_SHARED
    _WORKER_ID = wid
    # The spawned SeedSequence travels whole: its identity lives in the
    # spawn_key, which a bare .entropy copy would drop (every worker
    # would then share one stream).
    _WORKER_RNG = np.random.default_rng(seed_seq)
    while True:
        message = task_q.get()
        kind = message[0]
        if kind == "stop":
            return
        if kind == "shared":
            _WORKER_SHARED = message[1]
            continue
        _, batch, index, fn, payload = message
        tracer = Tracer(enabled=collect_telemetry)
        try:
            with use_tracer(tracer):
                with tracer.span("jobs.job", job=index):
                    value = fn(payload)
            result_q.put(("result", wid, batch, index, value,
                          _ship_telemetry(tracer, wid)))
        except Exception as exc:  # shipped to the parent, not raised here
            try:
                result_q.put(("error", wid, batch, index,
                              f"{type(exc).__name__}: {exc}",
                              _ship_telemetry(tracer, wid)))
            except Exception:
                # Even the error wouldn't pickle; send a bare notice so
                # the parent never hangs waiting on this job.
                result_q.put(("error", wid, batch, index,
                              f"{type(exc).__name__} (unpicklable detail)",
                              None))


class _Worker:
    """Parent-side handle on one worker process."""

    __slots__ = ("wid", "process", "task_q", "job", "started_s", "attempts",
                 "shared_sent")

    def __init__(self, wid: int):
        self.wid = wid
        self.process = None
        self.task_q = None
        self.job: int | None = None
        self.started_s = 0.0
        self.attempts = 0
        self.shared_sent = False

    @property
    def idle(self) -> bool:
        return self.job is None

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class WorkerPool:
    """A restartable pool of worker processes with per-job timeouts.

    Args:
        workers: process count; ``1`` means in-process serial execution.
        timeout_s: per-job wall-clock budget (parallel mode only; the
            serial fallback cannot preempt a running job).
        max_retries: how many times a job is requeued after its worker
            crashed or timed out before the job is declared failed.
        seed: root of the per-worker ``SeedSequence`` tree.
        start_method: ``"fork"``/``"spawn"``/``"forkserver"``; default
            picks ``fork`` where available (cheap on Linux), else
            ``spawn``.  No method available at all → serial fallback.
    """

    def __init__(
        self,
        workers: int = 1,
        timeout_s: float | None = None,
        max_retries: int = 2,
        seed: int = 0,
        start_method: str | None = None,
    ):
        if workers < 1:
            raise JobError("need workers >= 1")
        if timeout_s is not None and timeout_s <= 0:
            raise JobError("timeout_s must be positive")
        if max_retries < 0:
            raise JobError("max_retries must be >= 0")
        self.workers = workers
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.seed = seed
        self._ctx = None
        self._start_method = start_method
        if workers > 1:
            available = multiprocessing.get_all_start_methods()
            if start_method is None:
                start_method = "fork" if "fork" in available else (
                    "spawn" if "spawn" in available else None)
            elif start_method not in available:
                raise JobError(
                    f"start method {start_method!r} unavailable "
                    f"(have: {available})"
                )
            if start_method is not None:
                self._ctx = multiprocessing.get_context(start_method)
                self._start_method = start_method
        self._seed_root = np.random.SeedSequence(seed)
        self._seeds_spawned = 0
        self._result_q = None
        self._pool: list[_Worker] = []
        self._collect_telemetry = False
        self._batch = 0

    @property
    def parallel(self) -> bool:
        """Whether jobs run in worker processes (vs the serial fallback)."""
        return self._ctx is not None

    # -- serial fallback ----------------------------------------------------
    def _run_serial(self, fn, payloads, shared, progress) -> list[JobOutcome]:
        global _WORKER_ID, _WORKER_RNG, _WORKER_SHARED
        saved = (_WORKER_ID, _WORKER_RNG, _WORKER_SHARED)
        _WORKER_ID = 0
        _WORKER_RNG = np.random.default_rng(self._next_seed())
        _WORKER_SHARED = shared
        outcomes = []
        try:
            for index, payload in enumerate(payloads):
                tracer = current_tracer()
                try:
                    with tracer.span("jobs.job", job=index, worker=0):
                        value = fn(payload)
                    outcomes.append(JobOutcome(index=index, value=value,
                                               worker=0))
                except Exception as exc:
                    outcomes.append(JobOutcome(
                        index=index,
                        error=f"{type(exc).__name__}: {exc}",
                        worker=0,
                    ))
                if progress is not None:
                    progress(len(outcomes), len(payloads))
        finally:
            _WORKER_ID, _WORKER_RNG, _WORKER_SHARED = saved
        return outcomes

    # -- parallel machinery -------------------------------------------------
    def _next_seed(self) -> np.random.SeedSequence:
        # SeedSequence tracks n_children_spawned itself, so successive
        # calls yield distinct children even across worker restarts.
        self._seeds_spawned += 1
        return self._seed_root.spawn(1)[0]

    def _spawn_worker(self, worker: _Worker) -> None:
        worker.task_q = self._ctx.Queue()
        worker.process = self._ctx.Process(
            target=_worker_main,
            args=(worker.wid, self._next_seed(), worker.task_q,
                  self._result_q, self._collect_telemetry),
            daemon=True,
        )
        worker.shared_sent = False
        worker.process.start()

    def _ensure_workers(self, needed: int, collect_telemetry: bool) -> None:
        if self._result_q is None:
            self._result_q = self._ctx.Queue()
        if collect_telemetry != self._collect_telemetry and self._pool:
            # Telemetry flag is baked into worker processes; recycle.
            self._stop_workers()
        self._collect_telemetry = collect_telemetry
        while len(self._pool) < min(self.workers, max(needed, 1)):
            worker = _Worker(len(self._pool))
            self._pool.append(worker)
            self._spawn_worker(worker)
        for worker in self._pool:
            if not worker.alive():
                self._spawn_worker(worker)

    def _replace_worker(self, worker: _Worker) -> None:
        if worker.process is not None and worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(_JOIN_S)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(_JOIN_S)
        worker.job = None
        self._spawn_worker(worker)

    def _stop_workers(self) -> None:
        for worker in self._pool:
            if worker.alive():
                try:
                    worker.task_q.put(("stop",))
                except Exception:
                    pass
        for worker in self._pool:
            if worker.process is not None:
                worker.process.join(_JOIN_S)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(_JOIN_S)
        self._pool = []

    def _dispatch(self, worker: _Worker, fn, index: int, payload,
                  shared, attempts: int) -> None:
        if shared is not None and not worker.shared_sent:
            worker.task_q.put(("shared", shared))
            worker.shared_sent = True
        worker.task_q.put(("job", self._batch, index, fn, payload))
        worker.job = index
        worker.started_s = monotonic_s()
        worker.attempts = attempts

    def _drain_stale(self) -> None:
        """Discard leftover messages (abandoned retries, prior batches)."""
        while True:
            try:
                self._result_q.get_nowait()
            except _queue.Empty:
                return

    def _run_parallel(self, fn, payloads, shared,
                      progress) -> list[JobOutcome]:
        n = len(payloads)
        tracer = current_tracer()
        self._ensure_workers(n, tracer.enabled)
        self._batch += 1
        self._drain_stale()
        for worker in self._pool:
            worker.shared_sent = False
        pending: list[tuple[int, int]] = [(i, 1) for i in
                                          reversed(range(n))]  # (job, attempt)
        outcomes: dict[int, JobOutcome] = {}

        def fail(index: int, attempt: int, reason: str,
                 wid: int | None) -> None:
            if attempt <= self.max_retries:
                pending.append((index, attempt + 1))
            else:
                outcomes[index] = JobOutcome(index=index, error=reason,
                                             attempts=attempt, worker=wid)
                if progress is not None:
                    progress(len(outcomes), n)

        while len(outcomes) < n:
            # Feed every idle worker while jobs remain.
            for worker in self._pool:
                if pending and worker.idle and worker.alive():
                    index, attempt = pending.pop()
                    self._dispatch(worker, fn, index, payloads[index],
                                   shared, attempt)
            try:
                message = self._result_q.get(timeout=_POLL_S)
            except _queue.Empty:
                message = None
            if message is not None:
                kind, wid, batch, index, detail, telemetry = message
                if batch != self._batch:
                    continue  # stale: from a drained worker of a prior batch
                worker = self._pool[wid]
                if worker.job == index:
                    worker.job = None
                if index in outcomes:
                    continue  # duplicate from an abandoned retry attempt
                if telemetry is not None:
                    tracer.absorb(*telemetry)
                if kind == "result":
                    outcomes[index] = JobOutcome(
                        index=index, value=detail,
                        attempts=worker.attempts, worker=wid,
                    )
                else:
                    outcomes[index] = JobOutcome(
                        index=index, error=detail,
                        attempts=worker.attempts, worker=wid,
                    )
                if progress is not None:
                    progress(len(outcomes), n)
                continue

            # No result this tick: police deadlines and dead workers.
            now_s = monotonic_s()
            for worker in self._pool:
                if worker.idle:
                    if not worker.alive() and pending:
                        self._spawn_worker(worker)
                    continue
                index, attempt = worker.job, worker.attempts
                if not worker.alive():
                    exit_code = worker.process.exitcode
                    self._replace_worker(worker)
                    fail(index, attempt,
                         f"worker crashed (exit code {exit_code})",
                         worker.wid)
                elif (self.timeout_s is not None
                      and now_s - worker.started_s > self.timeout_s):
                    self._replace_worker(worker)
                    fail(index, attempt,
                         f"job exceeded timeout of {self.timeout_s:g}s",
                         worker.wid)
        return [outcomes[i] for i in range(n)]

    # -- public API ---------------------------------------------------------
    def run(self, fn: Callable, payloads: Sequence, shared=None,
            progress: Callable[[int, int], None] | None = None,
            ) -> list[JobOutcome]:
        """Run ``fn(payload)`` for every payload; outcomes in input order.

        Never raises for job-level failures — inspect
        :attr:`JobOutcome.error`.  ``shared`` is broadcast once per
        worker and readable via :func:`worker_shared`.
        """
        payloads = list(payloads)
        if not payloads:
            return []
        tracer = current_tracer()
        with tracer.span("jobs.batch", n=len(payloads),
                         workers=self.workers if self.parallel else 1,
                         parallel=self.parallel):
            if not self.parallel:
                return self._run_serial(fn, payloads, shared, progress)
            return self._run_parallel(fn, payloads, shared, progress)

    def map(self, fn: Callable, payloads: Sequence, shared=None,
            progress: Callable[[int, int], None] | None = None) -> list:
        """Like :meth:`run` but returns bare values; raises on failure."""
        outcomes = self.run(fn, payloads, shared=shared, progress=progress)
        failed = [o for o in outcomes if not o.ok]
        if failed:
            first = failed[0]
            raise JobError(
                f"{len(failed)}/{len(outcomes)} jobs failed; first: "
                f"job {first.index} after {first.attempts} attempt(s): "
                f"{first.error}"
            )
        return [o.value for o in outcomes]

    def close(self) -> None:
        """Stop every worker process (idempotent)."""
        if self._pool:
            self._stop_workers()
        if self._result_q is not None:
            self._result_q.close()
            self._result_q = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
