"""Batch evaluation on top of the pool + store: the DSE's execution engine.

:class:`JobRunner` is what the exploration loops actually hold: it owns
a (lazily started, reused across rounds) :class:`~repro.jobs.pool.WorkerPool`,
consults the optional :class:`~repro.jobs.store.EvaluationStore` before
spending any compute, persists fresh results as soon as they arrive, and
degrades *job* failures into failed evaluations so a search survives a
flaky worker the same way it survives a diverging configuration.

    runner = JobRunner(workers=4, store=store)
    evaluations = runner.evaluate(evaluator, configurations)

Results are always in input order and independent of worker scheduling,
which is what makes ``workers=1`` and ``workers=N`` byte-identical for
the same seed.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from ..errors import JobError
from ..hypermapper.evaluator import Evaluation, Evaluator
from ..telemetry import current_tracer
from .pool import JobOutcome, WorkerPool
from .store import EvaluationStore
from .tasks import evaluate_configuration_batch

#: Target jobs per worker when auto-chunking a batch: enough slack for
#: load-balance across uneven evaluation times, few enough jobs that
#: dispatch overhead stays amortised.
_AUTO_JOBS_PER_WORKER = 4


def _chunk_indices(indices: Sequence[int], batch_size: int) -> list[list[int]]:
    """Split ``indices`` into near-equal chunks of at most ``batch_size``.

    Even sizes (differing by at most one) rather than a full tail
    chunk + remainder, so no worker draws a systematically short job.
    """
    n = len(indices)
    n_chunks = -(-n // batch_size)  # ceil
    base, extra = divmod(n, n_chunks)
    chunks, at = [], 0
    for c in range(n_chunks):
        size = base + (1 if c < extra else 0)
        chunks.append(list(indices[at:at + size]))
        at += size
    return chunks


def _failed_evaluation(configuration: Mapping,
                       outcome: JobOutcome) -> Evaluation:
    """A job-level failure, reported the way evaluators report divergence."""
    return Evaluation(
        configuration=dict(configuration),
        runtime_s=float("inf"),
        max_ate_m=float("inf"),
        power_w=float("inf"),
        failed=True,
        extras={"error": outcome.error, "job_attempts": outcome.attempts},
    )


class JobRunner:
    """Submit/gather batches of evaluations (and generic jobs).

    Args:
        workers: worker process count (1 = in-process serial).
        timeout_s: per-job wall-clock budget (see ``WorkerPool``).
        max_retries: requeues after a crash/timeout before giving up.
        seed: pool RNG-tree seed.
        start_method: multiprocessing start method override.
        store: optional evaluation store consulted before, and updated
            after, every batch.
        progress: ``progress(done, total)`` callback per completed job
            (store hits report immediately).
    """

    def __init__(
        self,
        workers: int = 1,
        timeout_s: float | None = None,
        max_retries: int = 2,
        seed: int = 0,
        start_method: str | None = None,
        store: EvaluationStore | None = None,
        progress: Callable[[int, int], None] | None = None,
    ):
        self.pool = WorkerPool(
            workers=workers,
            timeout_s=timeout_s,
            max_retries=max_retries,
            seed=seed,
            start_method=start_method,
        )
        self.store = store
        self.progress = progress

    @property
    def workers(self) -> int:
        return self.pool.workers

    def evaluate(self, evaluator: Evaluator,
                 configurations: Sequence[Mapping],
                 batch_size: int | None = None) -> list[Evaluation]:
        """Evaluate a batch of configurations, memoized through the store.

        Store hits cost nothing and count ``dse.cache_hits`` (the same
        counter the in-memory evaluator cache uses); misses are fanned
        out over the pool, persisted on completion, and returned in
        input order.  Jobs that fail at the infrastructure level after
        every retry come back as ``Evaluation(failed=True)`` with the
        error in ``extras`` — they are *not* persisted, so a rerun gets
        another chance at them.

        ``batch_size`` caps how many configurations ride in one
        submitted job.  The default (``None``) auto-chunks: serial
        pools evaluate in place (chunking buys nothing), parallel pools
        aim for ``_AUTO_JOBS_PER_WORKER`` jobs per worker so dispatch
        overhead (queue round-trips, parent poll latency) is amortised
        over several evaluations while load-balance survives uneven
        runtimes.  Retries and the per-job ``timeout_s`` apply to whole
        chunks: a crashed worker re-runs its chunk, a timeout must
        cover ``batch_size`` evaluations.
        """
        if batch_size is not None and batch_size < 1:
            raise JobError(f"batch_size must be >= 1, got {batch_size}")
        configurations = [dict(c) for c in configurations]
        n = len(configurations)
        if n == 0:
            return []
        tracer = current_tracer()
        results: list[Evaluation | None] = [None] * n

        missing: list[int] = []
        if self.store is not None:
            for i, config in enumerate(configurations):
                hit = self.store.get(config)
                if hit is not None:
                    results[i] = hit
                else:
                    missing.append(i)
        else:
            missing = list(range(n))

        done_base = n - len(missing)
        if self.progress is not None and done_base:
            self.progress(done_base, n)
        if not missing:
            return results  # type: ignore[return-value]

        if batch_size is None:
            if not self.pool.parallel:
                batch_size = 1
            else:
                per_worker = self.workers * _AUTO_JOBS_PER_WORKER
                batch_size = max(1, len(missing) // per_worker)
        chunks = _chunk_indices(missing, batch_size)

        def chunk_progress(done_jobs: int, total_jobs: int) -> None:
            # Chunk identities are not in the callback, so interpolate:
            # near-equal chunks make this off by at most one chunk, and
            # it lands exactly on n when the last job completes.
            done = done_base + (done_jobs * len(missing)) // total_jobs
            self.progress(done, n)

        with tracer.span("jobs.evaluate_batch", n=n,
                         store_hits=done_base, evaluated=len(missing),
                         batch_size=batch_size, jobs=len(chunks)):
            outcomes = self.pool.run(
                evaluate_configuration_batch,
                [[configurations[i] for i in chunk] for chunk in chunks],
                shared=evaluator,
                progress=None if self.progress is None else chunk_progress,
            )
            for chunk, outcome in zip(chunks, outcomes):
                if outcome.ok:
                    for i, evaluation in zip(chunk, outcome.value):
                        results[i] = evaluation
                        if self.store is not None:
                            self.store.put(evaluation)
                else:
                    tracer.count("jobs.failed_jobs")
                    for i in chunk:
                        results[i] = _failed_evaluation(configurations[i],
                                                        outcome)
        return results  # type: ignore[return-value]

    def map(self, fn: Callable, payloads: Sequence, shared=None) -> list:
        """Generic ordered fan-out; raises :class:`JobError` on failure."""
        return self.pool.map(fn, payloads, shared=shared,
                             progress=self.progress)

    def run(self, fn: Callable, payloads: Sequence,
            shared=None) -> list[JobOutcome]:
        """Generic fan-out returning per-job :class:`JobOutcome`\\ s."""
        return self.pool.run(fn, payloads, shared=shared,
                             progress=self.progress)

    def close(self) -> None:
        self.pool.close()

    def __enter__(self) -> "JobRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def evaluate_batch(
    evaluator: Evaluator,
    configurations: Sequence[Mapping],
    workers: int = 1,
    timeout_s: float | None = None,
    store: EvaluationStore | None = None,
    seed: int = 0,
) -> list[Evaluation]:
    """One-shot convenience: pool up, evaluate, pool down."""
    if workers < 1:
        raise JobError("need workers >= 1")
    with JobRunner(workers=workers, timeout_s=timeout_s, store=store,
                   seed=seed) as runner:
        return runner.evaluate(evaluator, configurations)
