"""Batch evaluation on top of the pool + store: the DSE's execution engine.

:class:`JobRunner` is what the exploration loops actually hold: it owns
a (lazily started, reused across rounds) :class:`~repro.jobs.pool.WorkerPool`,
consults the optional :class:`~repro.jobs.store.EvaluationStore` before
spending any compute, persists fresh results as soon as they arrive, and
degrades *job* failures into failed evaluations so a search survives a
flaky worker the same way it survives a diverging configuration.

    runner = JobRunner(workers=4, store=store)
    evaluations = runner.evaluate(evaluator, configurations)

Results are always in input order and independent of worker scheduling,
which is what makes ``workers=1`` and ``workers=N`` byte-identical for
the same seed.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from ..errors import JobError
from ..hypermapper.evaluator import Evaluation, Evaluator
from ..telemetry import current_tracer
from .pool import JobOutcome, WorkerPool
from .store import EvaluationStore
from .tasks import evaluate_configuration


def _failed_evaluation(configuration: Mapping,
                       outcome: JobOutcome) -> Evaluation:
    """A job-level failure, reported the way evaluators report divergence."""
    return Evaluation(
        configuration=dict(configuration),
        runtime_s=float("inf"),
        max_ate_m=float("inf"),
        power_w=float("inf"),
        failed=True,
        extras={"error": outcome.error, "job_attempts": outcome.attempts},
    )


class JobRunner:
    """Submit/gather batches of evaluations (and generic jobs).

    Args:
        workers: worker process count (1 = in-process serial).
        timeout_s: per-job wall-clock budget (see ``WorkerPool``).
        max_retries: requeues after a crash/timeout before giving up.
        seed: pool RNG-tree seed.
        start_method: multiprocessing start method override.
        store: optional evaluation store consulted before, and updated
            after, every batch.
        progress: ``progress(done, total)`` callback per completed job
            (store hits report immediately).
    """

    def __init__(
        self,
        workers: int = 1,
        timeout_s: float | None = None,
        max_retries: int = 2,
        seed: int = 0,
        start_method: str | None = None,
        store: EvaluationStore | None = None,
        progress: Callable[[int, int], None] | None = None,
    ):
        self.pool = WorkerPool(
            workers=workers,
            timeout_s=timeout_s,
            max_retries=max_retries,
            seed=seed,
            start_method=start_method,
        )
        self.store = store
        self.progress = progress

    @property
    def workers(self) -> int:
        return self.pool.workers

    def evaluate(self, evaluator: Evaluator,
                 configurations: Sequence[Mapping]) -> list[Evaluation]:
        """Evaluate a batch of configurations, memoized through the store.

        Store hits cost nothing and count ``dse.cache_hits`` (the same
        counter the in-memory evaluator cache uses); misses are fanned
        out over the pool, persisted on completion, and returned in
        input order.  Jobs that fail at the infrastructure level after
        every retry come back as ``Evaluation(failed=True)`` with the
        error in ``extras`` — they are *not* persisted, so a rerun gets
        another chance at them.
        """
        configurations = [dict(c) for c in configurations]
        n = len(configurations)
        if n == 0:
            return []
        tracer = current_tracer()
        results: list[Evaluation | None] = [None] * n

        missing: list[int] = []
        if self.store is not None:
            for i, config in enumerate(configurations):
                hit = self.store.get(config)
                if hit is not None:
                    results[i] = hit
                else:
                    missing.append(i)
        else:
            missing = list(range(n))

        done_base = n - len(missing)
        if self.progress is not None and done_base:
            self.progress(done_base, n)

        with tracer.span("jobs.evaluate_batch", n=n,
                         store_hits=done_base, evaluated=len(missing)):
            if missing:
                outcomes = self.pool.run(
                    evaluate_configuration,
                    [configurations[i] for i in missing],
                    shared=evaluator,
                    progress=(
                        None if self.progress is None
                        else lambda done, _t: self.progress(done_base + done,
                                                            n)
                    ),
                )
                for i, outcome in zip(missing, outcomes):
                    if outcome.ok:
                        results[i] = outcome.value
                        if self.store is not None:
                            self.store.put(outcome.value)
                    else:
                        tracer.count("jobs.failed_jobs")
                        results[i] = _failed_evaluation(configurations[i],
                                                        outcome)
        return results  # type: ignore[return-value]

    def map(self, fn: Callable, payloads: Sequence, shared=None) -> list:
        """Generic ordered fan-out; raises :class:`JobError` on failure."""
        return self.pool.map(fn, payloads, shared=shared,
                             progress=self.progress)

    def run(self, fn: Callable, payloads: Sequence,
            shared=None) -> list[JobOutcome]:
        """Generic fan-out returning per-job :class:`JobOutcome`\\ s."""
        return self.pool.run(fn, payloads, shared=shared,
                             progress=self.progress)

    def close(self) -> None:
        self.pool.close()

    def __enter__(self) -> "JobRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def evaluate_batch(
    evaluator: Evaluator,
    configurations: Sequence[Mapping],
    workers: int = 1,
    timeout_s: float | None = None,
    store: EvaluationStore | None = None,
    seed: int = 0,
) -> list[Evaluation]:
    """One-shot convenience: pool up, evaluate, pool down."""
    if workers < 1:
        raise JobError("need workers >= 1")
    with JobRunner(workers=workers, timeout_s=timeout_s, store=store,
                   seed=seed) as runner:
        return runner.evaluate(evaluator, configurations)
