"""Corridor sequence presets — the tracking-robustness datasets.

Two sequences over the corridor scene (``repro.scene.corridor``):
``cor_walk`` walks along the furnished corridor (hard but trackable);
``cor_bare`` walks the featureless variant (the ICP-degenerate stress
case; dense tracking is *expected* to slide or report LOST here).
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError
from ..geometry import PinholeCamera, se3
from ..scene.corridor import corridor
from ..scene.noise import KinectNoiseModel
from ..scene.trajectory import Trajectory
from .synthetic import SyntheticSequence

SEQUENCE_NAMES = ("cor_walk", "cor_bare")


def _walk_trajectory(n_frames: int, step: float, seed: int) -> Trajectory:
    rng = np.random.default_rng(seed)
    poses = []
    for i in range(n_frames):
        eye = np.array([-2.0 + i * step, 1.2, 0.0])
        eye[1:] += rng.normal(0.0, 0.001, 2)  # slight hand-held sway
        target = eye + np.array([1.0, -0.05, 0.0])
        poses.append(se3.look_at(eye, target, up=(0, 1, 0)))
    return Trajectory(poses=np.stack(poses),
                      timestamps=np.arange(n_frames) / 30.0)


def load(
    name: str = "cor_walk",
    n_frames: int = 20,
    width: int = 160,
    height: int = 120,
    noise: KinectNoiseModel | None = None,
    seed: int = 0,
) -> SyntheticSequence:
    """Build one corridor sequence (walks ~1.2 cm per frame)."""
    if name == "cor_walk":
        scene = corridor(bare=False)
    elif name == "cor_bare":
        scene = corridor(bare=True)
    else:
        raise DatasetError(
            f"unknown corridor sequence {name!r}; choose from {SEQUENCE_NAMES}"
        )
    camera = PinholeCamera.kinect_like(width=width, height=height)
    trajectory = _walk_trajectory(n_frames, step=0.012, seed=seed)
    return SyntheticSequence(
        name=name,
        scene=scene,
        trajectory=trajectory,
        camera=camera,
        noise=noise if noise is not None else KinectNoiseModel.mild(),
        seed=seed,
    )
