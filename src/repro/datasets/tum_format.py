"""TUM RGB-D trajectory text format.

The de-facto interchange format of the SLAM evaluation ecosystem (the TUM
benchmark tools, evo, ...): one pose per line,

    timestamp tx ty tz qx qy qz qw

with ``#`` comments.  Exporting estimated trajectories in this format
makes the reproduction's outputs consumable by the standard external
tools, and importing lets external trajectories be evaluated with our
metrics.
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError
from ..geometry import se3
from ..scene.trajectory import Trajectory


def save_tum_trajectory(trajectory: Trajectory, path: str,
                        comment: str = "") -> None:
    """Write a trajectory as TUM text (quaternions in x, y, z, w order)."""
    if len(trajectory) == 0:
        raise DatasetError("cannot save an empty trajectory")
    with open(path, "w") as f:
        f.write("# timestamp tx ty tz qx qy qz qw\n")
        if comment:
            f.write(f"# {comment}\n")
        for t, T in zip(trajectory.timestamps, trajectory.poses):
            q = se3.rotation_to_quat(se3.rotation(T))  # (w, x, y, z)
            tx, ty, tz = se3.translation(T)
            f.write(
                f"{t:.6f} {tx:.6f} {ty:.6f} {tz:.6f} "
                f"{q[1]:.6f} {q[2]:.6f} {q[3]:.6f} {q[0]:.6f}\n"
            )


def load_tum_trajectory(path: str) -> Trajectory:
    """Read a TUM-format trajectory file."""
    timestamps, poses = [], []
    try:
        with open(path) as f:
            for line_no, line in enumerate(f, 1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) != 8:
                    raise DatasetError(
                        f"{path}:{line_no}: expected 8 fields, "
                        f"got {len(parts)}"
                    )
                try:
                    values = [float(p) for p in parts]
                except ValueError as exc:
                    raise DatasetError(
                        f"{path}:{line_no}: non-numeric field ({exc})"
                    ) from exc
                t, tx, ty, tz, qx, qy, qz, qw = values
                R = se3.quat_to_rotation(np.array([qw, qx, qy, qz]))
                timestamps.append(t)
                poses.append(se3.make_pose(R, [tx, ty, tz]))
    except OSError as exc:
        raise DatasetError(f"cannot read trajectory file {path}: {exc}") from exc
    if not poses:
        raise DatasetError(f"{path}: no poses found")
    return Trajectory(poses=np.stack(poses),
                      timestamps=np.asarray(timestamps))
