"""Ground-truth trajectory handling: association and normalisation.

The TUM evaluation tools associate estimated and ground-truth poses by
timestamp before computing errors; estimated trajectories may also be
expressed in an arbitrary start frame.  These helpers perform that
bookkeeping for the metric layer.
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError
from ..geometry import se3
from ..scene.trajectory import Trajectory


def associate(
    estimated: Trajectory,
    reference: Trajectory,
    max_dt: float = 0.02,
) -> tuple[np.ndarray, np.ndarray]:
    """Match estimated poses to reference poses by nearest timestamp.

    Returns index arrays ``(est_idx, ref_idx)`` of equal length; pairs whose
    timestamp difference exceeds ``max_dt`` seconds are dropped.  Each
    reference pose is used at most once (greedy nearest-first matching, as
    in the TUM tools).
    """
    if len(estimated) == 0 or len(reference) == 0:
        raise DatasetError("cannot associate empty trajectories")
    t_est = np.asarray(estimated.timestamps)
    t_ref = np.asarray(reference.timestamps)

    candidates = []
    for i, t in enumerate(t_est):
        j = int(np.argmin(np.abs(t_ref - t)))
        dt = abs(t_ref[j] - t)
        if dt <= max_dt:
            candidates.append((dt, i, j))
    candidates.sort()
    used_ref: set[int] = set()
    used_est: set[int] = set()
    pairs = []
    for _, i, j in candidates:
        if i in used_est or j in used_ref:
            continue
        used_est.add(i)
        used_ref.add(j)
        pairs.append((i, j))
    pairs.sort()
    if not pairs:
        return np.empty(0, dtype=int), np.empty(0, dtype=int)
    est_idx, ref_idx = zip(*pairs)
    return np.asarray(est_idx, dtype=int), np.asarray(ref_idx, dtype=int)


def rebase_to_first(trajectory: Trajectory) -> Trajectory:
    """Express the trajectory relative to its first pose.

    KinectFusion's poses start at the volume-centred initial pose, not at
    the dataset's world frame — rebasing both trajectories to their first
    pose (as SLAMBench does before ATE) removes the arbitrary offset.
    """
    return trajectory.relative(0)


def translation_errors(estimated: Trajectory, reference: Trajectory) -> np.ndarray:
    """Per-pose translation error (metres) for equal-length trajectories."""
    if len(estimated) != len(reference):
        raise DatasetError(
            f"length mismatch: {len(estimated)} vs {len(reference)}"
        )
    return np.linalg.norm(
        estimated.positions - reference.positions, axis=-1
    )


def rotation_errors(estimated: Trajectory, reference: Trajectory) -> np.ndarray:
    """Per-pose rotation error (radians) for equal-length trajectories."""
    if len(estimated) != len(reference):
        raise DatasetError(
            f"length mismatch: {len(estimated)} vs {len(reference)}"
        )
    return np.array(
        [
            se3.rotation_angle(se3.rotation(se3.inverse(a) @ b))
            for a, b in zip(estimated.poses, reference.poses)
        ]
    )
