"""Synthetic RGB-D sequence generation.

:class:`SyntheticSequence` renders frames on demand from a scene SDF, a
trajectory and a noise model — the Python stand-in for ICL-NUIM's raytraced
sequences (see DESIGN.md substitutions).  Rendering is deterministic given
the seed, and frames are memoised so the harness can iterate repeatedly
(e.g. once for the SLAM run, once for evaluation) without re-rendering.
"""

from __future__ import annotations

import numpy as np

from ..core.frame import Frame
from ..core.sensors import DepthSensor, GroundTruthSensor, RGBSensor, SensorSuite
from ..errors import DatasetError
from ..geometry import PinholeCamera
from ..scene.living_room import SceneDescription
from ..scene.noise import KinectNoiseModel
from ..scene.renderer import RenderSettings, render_depth, render_rgb
from ..scene.trajectory import Trajectory
from .base import Sequence


class SyntheticSequence(Sequence):
    """Frames rendered lazily from ``(scene, trajectory, camera, noise)``.

    Args:
        name: sequence identifier (e.g. ``"lr_kt0"``).
        scene: the ground-truth scene SDF.
        trajectory: camera-to-world poses, one per frame.
        camera: depth/RGB intrinsics.
        noise: sensor noise model; defaults to mild Kinect noise.
        with_rgb: render the RGB stream too (slower; tracking ignores it).
        seed: RNG seed for the noise model.
        render_settings: sphere-tracer quality knobs.
    """

    def __init__(
        self,
        name: str,
        scene: SceneDescription,
        trajectory: Trajectory,
        camera: PinholeCamera,
        noise: KinectNoiseModel | None = None,
        with_rgb: bool = False,
        seed: int = 0,
        render_settings: RenderSettings | None = None,
    ):
        if len(trajectory) == 0:
            raise DatasetError("trajectory is empty")
        self.name = name
        self._scene = scene
        self._trajectory = trajectory
        self._camera = camera
        self._noise = noise if noise is not None else KinectNoiseModel.mild()
        self._with_rgb = with_rgb
        self._seed = seed
        self._settings = render_settings or RenderSettings()
        self._cache: dict[int, Frame] = {}
        self._sensors = SensorSuite(
            depth=DepthSensor(
                camera=camera,
                min_range=self._settings.min_range,
                max_range=self._settings.max_range,
            ),
            rgb=RGBSensor(camera=camera) if with_rgb else None,
            ground_truth=GroundTruthSensor(),
        )

    @property
    def seed(self) -> int:
        """Reproducibility seed (recorded in run manifests)."""
        return self._seed

    @property
    def sensors(self) -> SensorSuite:
        return self._sensors

    @property
    def scene(self) -> SceneDescription:
        return self._scene

    @property
    def trajectory(self) -> Trajectory:
        return self._trajectory

    def __len__(self) -> int:
        return len(self._trajectory)

    def frame(self, index: int) -> Frame:
        if not 0 <= index < len(self):
            raise DatasetError(
                f"{self.name}: frame index {index} out of range [0, {len(self)})"
            )
        cached = self._cache.get(index)
        if cached is not None:
            return cached

        pose = self._trajectory[index]
        clean = render_depth(self._scene, self._camera, pose, self._settings)
        # One independent, reproducible RNG stream per frame so rendering
        # order never changes the data.
        rng = np.random.default_rng((self._seed, index))
        depth = self._noise.apply(clean, rng)
        rgb = (
            render_rgb(self._scene, self._camera, pose, self._settings)
            if self._with_rgb
            else None
        )
        frame = Frame(
            index=index,
            timestamp=float(self._trajectory.timestamps[index]),
            depth=depth,
            rgb=rgb,
            ground_truth_pose=pose,
        )
        self._cache[index] = frame
        return frame

    def clean_depth(self, index: int) -> np.ndarray:
        """Noiseless ground-truth depth for frame ``index`` (evaluation)."""
        pose = self._trajectory[index]
        return render_depth(self._scene, self._camera, pose, self._settings)

    def materialize(self) -> None:
        """Render every frame now (useful before timing-sensitive runs)."""
        for i in range(len(self)):
            self.frame(i)
