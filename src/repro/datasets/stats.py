"""Sequence statistics — dataset characterisation for reports.

SLAMBench-style papers characterise their datasets (frame counts, depth
coverage, motion magnitude) so accuracy numbers can be interpreted.
:func:`sequence_statistics` computes that characterisation for any
:class:`~repro.datasets.base.Sequence`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..geometry import se3
from .base import Sequence


@dataclass(frozen=True)
class SequenceStatistics:
    """Characterisation of one sequence."""

    name: str
    frames: int
    duration_s: float
    resolution: tuple[int, int]  # (height, width)
    valid_depth_mean: float
    depth_min_m: float
    depth_median_m: float
    depth_max_m: float
    path_length_m: float
    mean_translation_per_frame_m: float
    max_translation_per_frame_m: float
    mean_rotation_per_frame_rad: float

    def as_row(self) -> dict:
        """Flat dict for table/CSV rendering."""
        return {
            "sequence": self.name,
            "frames": self.frames,
            "duration_s": self.duration_s,
            "valid_depth": self.valid_depth_mean,
            "depth_median_m": self.depth_median_m,
            "path_m": self.path_length_m,
            "mean_step_mm": self.mean_translation_per_frame_m * 1e3,
            "mean_rot_deg": np.degrees(self.mean_rotation_per_frame_rad),
        }


def sequence_statistics(sequence: Sequence) -> SequenceStatistics:
    """Compute frame/depth/motion statistics for a sequence."""
    if len(sequence) == 0:
        raise DatasetError(f"{sequence.name}: empty sequence")

    valid_fracs = []
    depth_values = []
    timestamps = []
    for frame in sequence:
        valid = frame.depth > 0.0
        valid_fracs.append(float(valid.mean()))
        if valid.any():
            d = frame.depth[valid]
            depth_values.append(
                (float(d.min()), float(np.median(d)), float(d.max()))
            )
        timestamps.append(frame.timestamp)

    if depth_values:
        mins, medians, maxs = zip(*depth_values)
        depth_min, depth_median, depth_max = (
            min(mins), float(np.median(medians)), max(maxs),
        )
    else:
        depth_min = depth_median = depth_max = 0.0

    path_length = 0.0
    mean_step = max_step = mean_rot = 0.0
    if sequence.sensors.has_ground_truth and len(sequence) > 1:
        gt = sequence.ground_truth()
        steps = np.linalg.norm(np.diff(gt.positions, axis=0), axis=-1)
        rotations = [
            se3.rotation_angle(
                se3.rotation(se3.inverse(gt.poses[i]) @ gt.poses[i + 1])
            )
            for i in range(len(gt) - 1)
        ]
        path_length = float(steps.sum())
        mean_step = float(steps.mean())
        max_step = float(steps.max())
        mean_rot = float(np.mean(rotations))

    h, w = sequence.sensors.depth.camera.shape
    return SequenceStatistics(
        name=sequence.name,
        frames=len(sequence),
        duration_s=float(timestamps[-1] - timestamps[0]),
        resolution=(h, w),
        valid_depth_mean=float(np.mean(valid_fracs)),
        depth_min_m=depth_min,
        depth_median_m=depth_median,
        depth_max_m=depth_max,
        path_length_m=path_length,
        mean_translation_per_frame_m=mean_step,
        max_translation_per_frame_m=max_step,
        mean_rotation_per_frame_rad=mean_rot,
    )
