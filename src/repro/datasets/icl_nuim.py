"""ICL-NUIM-style living-room sequence presets.

The real ICL-NUIM benchmark ships four trajectories (``kt0`` .. ``kt3``)
through one living room, in clean and noisy variants; SLAMBench's standard
experiments run on them.  These presets regenerate the same *structure*:
four distinct trajectory styles through our procedural living room, at a
configurable resolution and length so tests can use tiny instances while
benchmarks use larger ones.
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError
from ..geometry import PinholeCamera
from ..scene.living_room import living_room
from ..scene.noise import KinectNoiseModel
from ..scene.trajectory import Trajectory, orbit, sweep
from .synthetic import SyntheticSequence

SEQUENCE_NAMES = ("lr_kt0", "lr_kt1", "lr_kt2", "lr_kt3")


def _trajectory_for(name: str, n_frames: int, seed: int) -> Trajectory:
    """One of four qualitatively different hand-held style trajectories.

    Per-frame motion is kept sensor-realistic (a few millimetres to ~1.5 cm
    per frame at 30 Hz) regardless of sequence length: orbits sweep a fixed
    number of degrees per frame, sweeps translate a fixed distance per
    frame, capped so long sequences stay inside the room.
    """
    center = (0.0, 1.1, 0.0)
    if name == "lr_kt0":
        # Gentle partial orbit — the easiest sequence (~0.35 deg/frame).
        return orbit(center, radius=1.6, height=1.3, n_frames=n_frames,
                     sweep_deg=min(0.35 * n_frames, 300.0), start_deg=200.0,
                     bob_amplitude=0.02, seed=seed,
                     jitter_trans_std=0.0008, jitter_rot_std=0.0008)
    if name == "lr_kt1":
        # Faster orbit with more bob (~0.42 deg/frame).
        return orbit(center, radius=1.8, height=1.5, n_frames=n_frames,
                     sweep_deg=min(0.42 * n_frames, 330.0), start_deg=150.0,
                     bob_amplitude=0.04, seed=seed,
                     jitter_trans_std=0.0015, jitter_rot_std=0.0015)
    if name == "lr_kt2":
        # Lateral sweep past the sofa (~9 mm/frame).
        direction = np.array([-1.0, -0.1, 0.1])
        direction /= np.linalg.norm(direction)
        start = np.array([1.4, 1.2, 1.4])
        end = start + direction * min(0.009 * n_frames, 2.4)
        return sweep(start=start, end=end,
                     target=(-1.2, 0.6, 0.0), n_frames=n_frames, seed=seed,
                     jitter_trans_std=0.001, jitter_rot_std=0.001)
    if name == "lr_kt3":
        # Push-in towards the table — large scale change (~7 mm/frame).
        direction = np.array([-0.7, -0.3, -0.65])
        direction /= np.linalg.norm(direction)
        start = np.array([1.8, 1.4, 1.2])
        end = start + direction * min(0.007 * n_frames, 1.4)
        return sweep(start=start, end=end,
                     target=(0.3, 0.45, -0.2), n_frames=n_frames, seed=seed,
                     jitter_trans_std=0.0012, jitter_rot_std=0.0012)
    raise DatasetError(
        f"unknown ICL-NUIM-style sequence {name!r}; choose from {SEQUENCE_NAMES}"
    )


def load(
    name: str = "lr_kt0",
    n_frames: int = 30,
    width: int = 160,
    height: int = 120,
    noise: KinectNoiseModel | None = None,
    with_rgb: bool = False,
    seed: int = 0,
) -> SyntheticSequence:
    """Build one living-room sequence.

    Args:
        name: one of ``lr_kt0`` .. ``lr_kt3``.
        n_frames: sequence length (the real sequences have ~900 frames;
            the default is laptop-scale).
        width, height: frame resolution (real: 640x480; SLAMBench computes
            at 320x240 by default).
        noise: depth noise model; ``None`` means mild Kinect noise, use
            :meth:`KinectNoiseModel.noiseless` for the clean variant.
        with_rgb: also render the RGB stream.
        seed: reproducibility seed for trajectory jitter and sensor noise.
    """
    scene = living_room()
    camera = PinholeCamera.kinect_like(width=width, height=height)
    trajectory = _trajectory_for(name, n_frames, seed)
    return SyntheticSequence(
        name=name,
        scene=scene,
        trajectory=trajectory,
        camera=camera,
        noise=noise,
        with_rgb=with_rgb,
        seed=seed,
    )


def load_all(n_frames: int = 30, width: int = 160, height: int = 120,
             seed: int = 0) -> list[SyntheticSequence]:
    """All four living-room sequences with shared settings."""
    return [load(name, n_frames=n_frames, width=width, height=height, seed=seed)
            for name in SEQUENCE_NAMES]
