"""TUM-RGB-D-style office sequence presets.

The TUM RGB-D benchmark is the second accuracy dataset SLAMBench supports.
We regenerate its character — hand-held motion through a cluttered office —
as two presets over the procedural office scene: ``of_desk`` (orbit around
the desk, like ``fr1/desk``) and ``of_room`` (a sweep across the room, like
``fr1/room``).
"""

from __future__ import annotations

from ..errors import DatasetError
from ..geometry import PinholeCamera
from ..scene.noise import KinectNoiseModel
from ..scene.office import office
from ..scene.trajectory import Trajectory, orbit, sweep
from .synthetic import SyntheticSequence

SEQUENCE_NAMES = ("of_desk", "of_room")


def _trajectory_for(name: str, n_frames: int, seed: int) -> Trajectory:
    # Per-frame motion kept hand-held realistic regardless of length, as in
    # the ICL-NUIM-style presets (see repro.datasets.icl_nuim).
    if name == "of_desk":
        return orbit(center=(-1.2, 0.9, -1.0), radius=1.3, height=1.3,
                     n_frames=n_frames, sweep_deg=min(0.5 * n_frames, 300.0),
                     start_deg=30.0, bob_amplitude=0.03,
                     seed=seed, jitter_trans_std=0.002, jitter_rot_std=0.002)
    if name == "of_room":
        import numpy as np

        direction = np.array([-1.0, -0.1, 0.05])
        direction /= np.linalg.norm(direction)
        start = np.array([1.2, 1.3, 1.2])
        end = start + direction * min(0.008 * n_frames, 2.2)
        return sweep(start=start, end=end,
                     target=(0.0, 0.8, -1.0), n_frames=n_frames, seed=seed,
                     jitter_trans_std=0.002, jitter_rot_std=0.002)
    raise DatasetError(
        f"unknown TUM-style sequence {name!r}; choose from {SEQUENCE_NAMES}"
    )


def load(
    name: str = "of_desk",
    n_frames: int = 30,
    width: int = 160,
    height: int = 120,
    noise: KinectNoiseModel | None = None,
    with_rgb: bool = False,
    seed: int = 0,
) -> SyntheticSequence:
    """Build one office sequence (see :func:`repro.datasets.icl_nuim.load`)."""
    scene = office()
    camera = PinholeCamera.kinect_like(width=width, height=height)
    trajectory = _trajectory_for(name, n_frames, seed)
    return SyntheticSequence(
        name=name,
        scene=scene,
        trajectory=trajectory,
        camera=camera,
        noise=noise if noise is not None else KinectNoiseModel(),
        with_rgb=with_rgb,
        seed=seed,
    )


def load_all(n_frames: int = 30, width: int = 160, height: int = 120,
             seed: int = 0) -> list[SyntheticSequence]:
    """Both office sequences with shared settings."""
    return [load(name, n_frames=n_frames, width=width, height=height, seed=seed)
            for name in SEQUENCE_NAMES]
