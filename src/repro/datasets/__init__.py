"""Dataset layer: sequences, presets, ground truth and serialisation."""

from . import corridor_seq, icl_nuim, tum
from .base import InMemorySequence, Sequence
from .groundtruth import associate, rebase_to_first, rotation_errors, translation_errors
from .io import load_sequence, save_sequence
from .stats import SequenceStatistics, sequence_statistics
from .synthetic import SyntheticSequence
from .tum_format import load_tum_trajectory, save_tum_trajectory

__all__ = [
    "corridor_seq",
    "icl_nuim",
    "tum",
    "InMemorySequence",
    "Sequence",
    "associate",
    "rebase_to_first",
    "rotation_errors",
    "translation_errors",
    "load_sequence",
    "save_sequence",
    "SequenceStatistics",
    "sequence_statistics",
    "SyntheticSequence",
    "load_tum_trajectory",
    "save_tum_trajectory",
]
