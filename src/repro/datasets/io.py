"""Sequence serialisation — the Python analogue of SLAMBench's ``.slam`` files.

SLAMBench converts every dataset into a common binary format consumed by the
loader.  We serialise sequences into a single ``.npz`` archive carrying the
depth stack, optional RGB stack, timestamps, ground-truth poses and the
camera calibration.  Round-tripping through :func:`save_sequence` /
:func:`load_sequence` preserves everything the harness needs.
"""

from __future__ import annotations

import os

import numpy as np

from ..core.frame import Frame
from ..core.sensors import DepthSensor, GroundTruthSensor, RGBSensor, SensorSuite
from ..errors import DatasetError
from ..geometry import PinholeCamera
from .base import InMemorySequence, Sequence

FORMAT_VERSION = 1


def save_sequence(sequence: Sequence, path: str) -> None:
    """Write a sequence to ``path`` (``.npz``).

    Depth is stored as float32 metres; RGB (if present) as uint8.
    """
    frames = list(sequence)
    if not frames:
        raise DatasetError("cannot save an empty sequence")
    depth = np.stack([f.depth for f in frames]).astype(np.float32)
    timestamps = np.array([f.timestamp for f in frames], dtype=np.float64)
    camera = sequence.sensors.depth.camera
    payload = {
        "format_version": np.array(FORMAT_VERSION),
        "name": np.array(sequence.name),
        "depth": depth,
        "timestamps": timestamps,
        "camera": np.array(
            [camera.width, camera.height, camera.fx, camera.fy, camera.cx,
             camera.cy],
            dtype=np.float64,
        ),
        "depth_range": np.array(
            [sequence.sensors.depth.min_range, sequence.sensors.depth.max_range]
        ),
    }
    if all(f.rgb is not None for f in frames):
        rgb = np.stack([f.rgb for f in frames])
        payload["rgb"] = np.clip(rgb * 255.0, 0, 255).astype(np.uint8)
    if all(f.ground_truth_pose is not None for f in frames):
        payload["ground_truth"] = np.stack(
            [f.ground_truth_pose for f in frames]
        ).astype(np.float64)
    np.savez_compressed(path, **payload)


def load_sequence(path: str) -> InMemorySequence:
    """Load a sequence previously written by :func:`save_sequence`."""
    if not os.path.exists(path):
        raise DatasetError(f"sequence file not found: {path}")
    try:
        archive = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise DatasetError(f"cannot read sequence file {path}: {exc}") from exc

    try:
        version = int(archive["format_version"])
        if version != FORMAT_VERSION:
            raise DatasetError(
                f"{path}: unsupported format version {version} "
                f"(expected {FORMAT_VERSION})"
            )
        name = str(archive["name"])
        depth = archive["depth"].astype(float)
        timestamps = archive["timestamps"]
        cam = archive["camera"]
        depth_range = archive["depth_range"]
    except KeyError as exc:
        raise DatasetError(f"{path}: missing field {exc}") from exc

    camera = PinholeCamera(
        width=int(cam[0]), height=int(cam[1]),
        fx=float(cam[2]), fy=float(cam[3]), cx=float(cam[4]), cy=float(cam[5]),
    )
    rgb = archive["rgb"].astype(float) / 255.0 if "rgb" in archive else None
    gt = archive["ground_truth"] if "ground_truth" in archive else None

    n = depth.shape[0]
    if len(timestamps) != n or (rgb is not None and rgb.shape[0] != n) or (
        gt is not None and gt.shape[0] != n
    ):
        raise DatasetError(f"{path}: inconsistent stack lengths")

    frames = [
        Frame(
            index=i,
            timestamp=float(timestamps[i]),
            depth=depth[i],
            rgb=rgb[i] if rgb is not None else None,
            ground_truth_pose=gt[i] if gt is not None else None,
        )
        for i in range(n)
    ]
    sensors = SensorSuite(
        depth=DepthSensor(camera=camera, min_range=float(depth_range[0]),
                          max_range=float(depth_range[1])),
        rgb=RGBSensor(camera=camera) if rgb is not None else None,
        ground_truth=GroundTruthSensor() if gt is not None else None,
    )
    return InMemorySequence(name=name, sensors=sensors, frames=frames)
