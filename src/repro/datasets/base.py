"""Dataset abstractions.

A :class:`Sequence` is what the harness consumes: an ordered collection of
:class:`~repro.core.frame.Frame` objects plus the sensor suite describing
them and (optionally) a ground-truth trajectory and the generating scene.
Concrete sequences are synthetic (``repro.datasets.synthetic``) or loaded
from disk (``repro.datasets.io``).
"""

from __future__ import annotations

import abc
from typing import Iterator

import numpy as np

from ..core.frame import Frame
from ..core.sensors import SensorSuite
from ..errors import DatasetError
from ..scene.living_room import SceneDescription
from ..scene.trajectory import Trajectory


class Sequence(abc.ABC):
    """An ordered RGB-D sequence with metadata."""

    name: str = "sequence"

    @property
    @abc.abstractmethod
    def sensors(self) -> SensorSuite:
        """Sensor suite describing the frames."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of frames."""

    @abc.abstractmethod
    def frame(self, index: int) -> Frame:
        """The frame at ``index`` (0-based)."""

    def __iter__(self) -> Iterator[Frame]:
        for i in range(len(self)):
            yield self.frame(i)

    def ground_truth(self) -> Trajectory:
        """Ground-truth trajectory, if the dataset has one.

        Default implementation collects per-frame poses; raises
        :class:`~repro.errors.DatasetError` when any frame lacks one.
        """
        poses, stamps = [], []
        for f in self:
            if f.ground_truth_pose is None:
                raise DatasetError(
                    f"{self.name}: frame {f.index} has no ground-truth pose"
                )
            poses.append(f.ground_truth_pose)
            stamps.append(f.timestamp)
        if not poses:
            raise DatasetError(f"{self.name}: empty sequence")
        return Trajectory(poses=np.stack(poses), timestamps=np.asarray(stamps))

    @property
    def scene(self) -> SceneDescription | None:
        """The generating scene (synthetic datasets only)."""
        return None

    def validate(self) -> None:
        """Sanity-check the sequence: shapes, timestamps, indices."""
        if len(self) == 0:
            raise DatasetError(f"{self.name}: empty sequence")
        shape = self.sensors.depth.camera.shape
        last_t = -np.inf
        for i, f in enumerate(self):
            if f.index != i:
                raise DatasetError(f"{self.name}: frame {i} has index {f.index}")
            if f.shape != shape:
                raise DatasetError(
                    f"{self.name}: frame {i} shape {f.shape} != sensor {shape}"
                )
            if f.timestamp < last_t:
                raise DatasetError(f"{self.name}: timestamps not monotonic at {i}")
            last_t = f.timestamp


class InMemorySequence(Sequence):
    """A sequence backed by a list of already-materialised frames."""

    def __init__(self, name: str, sensors: SensorSuite, frames: list[Frame],
                 scene: SceneDescription | None = None):
        if not frames:
            raise DatasetError("InMemorySequence needs at least one frame")
        self.name = name
        self._sensors = sensors
        self._frames = list(frames)
        self._scene = scene

    @property
    def sensors(self) -> SensorSuite:
        return self._sensors

    def __len__(self) -> int:
        return len(self._frames)

    def frame(self, index: int) -> Frame:
        if not 0 <= index < len(self._frames):
            raise DatasetError(
                f"{self.name}: frame index {index} out of range [0, {len(self)})"
            )
        return self._frames[index]

    @property
    def scene(self) -> SceneDescription | None:
        return self._scene
