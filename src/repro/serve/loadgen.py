"""Load generator: many synthetic clients with heavy-tailed behaviour.

Real SLAM-as-a-service traffic is not uniform: clients arrive in bursts
and their frame rates span an order of magnitude (a phone throttling at
5 fps next to a headset pushing 30).  The generator models both with
heavy-tailed distributions drawn from one injected, seeded
``np.random.Generator``:

* **client arrivals** — Pareto inter-arrival times (tail index
  ``arrival_shape``, normalised so the configured mean holds), so load
  comes in clumps rather than a metronome;
* **frame rates** — log-normal per-client fps around ``fps_median``.

From those it builds a deterministic *schedule* — every open, frame and
close event with its virtual timestamp — and replays it against a
:class:`~repro.serve.ServeEngine`'s transport.  Replay maps virtual to
wall time through ``speed``: at ``speed=2`` the whole timeline is
offered twice as fast, which is how the benchmark pushes one fixed
workload through light, busy and overloaded regimes without changing
the schedule itself.

Every client streams frames from one shared, pre-materialised
:class:`~repro.datasets.base.Sequence` (cycled when the client wants
more frames than the stream has), re-indexed per session — sessions are
independent, so sharing the rendered pixels costs nothing and keeps a
thousand-client run affordable.

Offered-rate accounting uses the same
:class:`~repro.telemetry.RateWindow` primitive as the engine's stats,
per the one-implementation rule.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from ..errors import ServeError
from ..telemetry import RateWindow, monotonic_s
from .engine import ServeEngine
from .transport import SessionClose, SessionFrame, SessionOpen

#: Event kinds, in tie-break order at equal timestamps: a client's open
#: sorts before its first frame, frames before its close.
_OPEN, _FRAME, _CLOSE = 0, 1, 2


@dataclass(frozen=True)
class LoadSpec:
    """Shape of one generated load.

    Attributes:
        clients: number of simulated clients (sessions).
        frames_per_client: frames each client streams.
        mean_interarrival_s: mean virtual gap between client arrivals.
        arrival_shape: Pareto tail index for inter-arrivals (must be
            > 1 so the mean exists; smaller = burstier).
        fps_median: median per-client frame rate (virtual fps).
        fps_sigma: log-normal dispersion of per-client frame rates.
        speed: virtual seconds offered per wall second during replay
            (> 1 compresses the timeline: the overload knob).
        seed: RNG seed; the schedule is a pure function of the spec.
    """

    clients: int = 8
    frames_per_client: int = 20
    mean_interarrival_s: float = 0.05
    arrival_shape: float = 1.5
    fps_median: float = 10.0
    fps_sigma: float = 0.75
    speed: float = 1.0
    seed: int = 0

    def __post_init__(self):
        if self.clients < 1 or self.frames_per_client < 1:
            raise ServeError(
                f"need >= 1 clients and frames_per_client, got "
                f"({self.clients}, {self.frames_per_client})"
            )
        if self.arrival_shape <= 1.0:
            raise ServeError(
                f"arrival_shape must be > 1 (finite mean), "
                f"got {self.arrival_shape}"
            )
        if self.mean_interarrival_s < 0 or self.fps_median <= 0:
            raise ServeError("arrival/fps scales must be positive")
        if self.speed <= 0:
            raise ServeError(f"speed must be positive, got {self.speed}")


@dataclass(frozen=True)
class ClientPlan:
    """One simulated client's drawn behaviour."""

    client_id: str
    arrival_s: float  #: virtual time the client opens its session
    fps: float        #: the client's drawn frame rate (virtual)


@dataclass(frozen=True)
class LoadEvent:
    """One scheduled transport message at a virtual timestamp."""

    time_s: float
    kind: int         #: _OPEN / _FRAME / _CLOSE
    client: ClientPlan
    frame_number: int = 0  #: per-session frame index (kind == _FRAME)


def build_schedule(spec: LoadSpec) -> tuple[list[ClientPlan],
                                            list[LoadEvent]]:
    """Draw the client population and lay out every event in virtual time.

    Deterministic: one ``default_rng(spec.seed)`` drives every draw and
    events are sorted with a total order (time, client, kind, frame), so
    the same spec always produces the same message sequence.
    """
    rng = np.random.default_rng(spec.seed)
    # Pareto(a) + 1 has mean a/(a-1); rescale so the configured mean
    # inter-arrival holds while the tail index controls burstiness.
    raw_gaps = rng.pareto(spec.arrival_shape, size=spec.clients) + 1.0
    gaps = raw_gaps * (
        spec.mean_interarrival_s
        * (spec.arrival_shape - 1.0) / spec.arrival_shape
    )
    arrivals = np.cumsum(gaps) - gaps[0]  # first client arrives at t=0
    log_fps = rng.normal(np.log(spec.fps_median), spec.fps_sigma,
                         size=spec.clients)
    fps = np.exp(log_fps)

    width = max(4, len(str(spec.clients - 1)))
    plans = [
        ClientPlan(client_id=f"c{i:0{width}d}",
                   arrival_s=float(arrivals[i]), fps=float(fps[i]))
        for i in range(spec.clients)
    ]
    events: list[LoadEvent] = []
    for plan in plans:
        events.append(LoadEvent(plan.arrival_s, _OPEN, plan))
        for j in range(spec.frames_per_client):
            events.append(LoadEvent(plan.arrival_s + j / plan.fps,
                                    _FRAME, plan, frame_number=j))
        events.append(LoadEvent(
            plan.arrival_s + spec.frames_per_client / plan.fps,
            _CLOSE, plan,
        ))
    events.sort(key=lambda e: (e.time_s, e.client.client_id, e.kind,
                               e.frame_number))
    return plans, events


@dataclass
class LoadReport:
    """What the generator offered and what the engine did with it."""

    spec: LoadSpec
    wall_s: float             #: replay wall-clock duration
    offered_frames: int
    offered_fps: float        #: sliding-window offered rate at replay end
    engine_stats: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "spec": {
                "clients": self.spec.clients,
                "frames_per_client": self.spec.frames_per_client,
                "mean_interarrival_s": self.spec.mean_interarrival_s,
                "arrival_shape": self.spec.arrival_shape,
                "fps_median": self.spec.fps_median,
                "fps_sigma": self.spec.fps_sigma,
                "speed": self.spec.speed,
                "seed": self.spec.seed,
            },
            "wall_s": self.wall_s,
            "offered_frames": self.offered_frames,
            "offered_fps": self.offered_fps,
            "engine": self.engine_stats,
        }


def _session_frame(plan: ClientPlan, sequence, number: int) -> SessionFrame:
    base = sequence.frame(number % len(sequence))
    frame = replace(base.without_ground_truth(), index=number,
                    timestamp=number / plan.fps)
    return SessionFrame(client_id=plan.client_id, frame=frame)


def run_load(
    engine: ServeEngine,
    sequence,
    spec: LoadSpec,
    algorithm: str = "kfusion",
    configuration: dict | None = None,
    factory_kwargs: dict | None = None,
    threaded: bool = False,
    drain: bool = True,
    clock: Any = monotonic_s,
) -> LoadReport:
    """Replay ``spec`` against ``engine`` over its transport.

    In the default synchronous mode the replay loop interleaves event
    pushes with ``engine.step()`` calls — one thread, fully
    deterministic message *order* (latencies still come from the real
    clock).  With ``threaded=True`` the engine must already be
    ``start()``\\ ed: the loop only pushes (the producer role), and the
    scheduler thread consumes concurrently.

    ``drain=True`` runs the engine until every queued frame resolved
    (processed or dropped) before the report snapshot, so reports from
    finite loads always account for every offered frame.
    """
    if threaded and not engine.running:
        raise ServeError("threaded replay needs engine.start() first")
    sequence.materialize()
    _plans, events = build_schedule(spec)
    configuration = dict(configuration or {})
    factory_kwargs = dict(factory_kwargs or {})
    offered = RateWindow(clock=clock)
    transport = engine.transport
    # Never-set event whose ``wait`` is the replay loop's portable pacer —
    # yields the GIL to the scheduler thread without reading any clock.
    # Local on purpose: a module-level Event would be state shared across
    # concurrent run_load calls (and trips the RPR006 module-lock arm).
    pacer = threading.Event()

    n_frames = 0
    t0 = clock()
    i = 0
    while i < len(events):
        virtual_now = (clock() - t0) * spec.speed
        due = False
        while i < len(events) and events[i].time_s <= virtual_now:
            event = events[i]
            i += 1
            due = True
            if event.kind == _OPEN:
                transport.send(SessionOpen(
                    client_id=event.client.client_id,
                    sensors=sequence.sensors,
                    algorithm=algorithm,
                    configuration=configuration,
                    factory_kwargs=factory_kwargs,
                ))
            elif event.kind == _FRAME:
                transport.send(_session_frame(event.client, sequence,
                                              event.frame_number))
                offered.mark()
                n_frames += 1
            else:
                transport.send(SessionClose(event.client.client_id))
        if not threaded:
            engine.step()
        elif not due:
            # Producer is ahead of the timeline; yield the GIL to the
            # scheduler thread instead of spinning flat out.
            pacer.wait(0.001)
    if drain:
        if threaded:
            engine.stop(drain=True)
        else:
            engine.run_until_idle()
    wall_s = clock() - t0
    return LoadReport(
        spec=spec,
        wall_s=wall_s,
        offered_frames=n_frames,
        offered_fps=offered.rate(),
        engine_stats=engine.stats(),
    )


__all__ = [
    "ClientPlan",
    "LoadEvent",
    "LoadReport",
    "LoadSpec",
    "build_schedule",
    "run_load",
]
