"""The serving layer's transport boundary: ports and adapters.

The engine never talks to clients directly — it drains *messages* from a
:class:`Transport` port.  Three message kinds make up the whole session
protocol (mirroring the SLAMBench lifecycle the sessions run inside):

* :class:`SessionOpen` — a client announces itself, carrying everything
  the engine needs to build its SLAM system: sensor suite, algorithm
  name, configuration overrides, factory kwargs.
* :class:`SessionFrame` — one depth frame for an open session.
* :class:`SessionClose` — the client is done; the engine drains the
  session's queued frames, then releases its state.

:class:`InProcessTransport` is the first adapter: a thread-safe FIFO the
load generator (or a test) pushes into from any thread while the engine
drains it from its scheduler thread.  Because the engine depends only on
the port's four methods (``send`` / ``poll`` / ``wait`` / ``close``), a
socket adapter that deserialises the same messages from a wire protocol
can slot in without touching the engine — the ports/adapters split the
ROADMAP's SVTVision template prescribes.
"""

from __future__ import annotations

import abc
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..errors import ServeError


@dataclass(frozen=True)
class SessionOpen:
    """Open a session for ``client_id``.

    Attributes:
        client_id: unique session identifier chosen by the client.
        sensors: the client's :class:`~repro.core.sensors.SensorSuite`
            (a socket adapter would rebuild this from wire intrinsics).
        algorithm: registered algorithm name (``repro.core.registry``).
        configuration: parameter overrides applied before ``init``.
        factory_kwargs: keyword arguments for the algorithm factory
            (e.g. ``kernel_backend="fast"``).
    """

    client_id: str
    sensors: Any
    algorithm: str = "kfusion"
    configuration: dict = field(default_factory=dict)
    factory_kwargs: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SessionFrame:
    """One streamed depth frame for an open session."""

    client_id: str
    frame: Any  #: :class:`~repro.core.frame.Frame`


@dataclass(frozen=True)
class SessionClose:
    """The client finished streaming; drain and release the session."""

    client_id: str


Message = SessionOpen | SessionFrame | SessionClose


class Transport(abc.ABC):
    """Port the engine drains client messages from.

    Adapters must be safe to ``send`` from any number of client threads
    while one engine thread ``poll``\\ s.
    """

    @abc.abstractmethod
    def send(self, message: Message) -> None:
        """Enqueue one message (client side)."""

    @abc.abstractmethod
    def poll(self, max_messages: int | None = None) -> list:
        """Dequeue up to ``max_messages`` pending messages (engine side)."""

    @abc.abstractmethod
    def wait(self, timeout_s: float) -> bool:
        """Block until a message is pending (or ``timeout_s`` elapses).

        Returns whether messages are pending — the engine's idle path
        parks here instead of spinning.
        """

    @abc.abstractmethod
    def close(self) -> None:
        """Refuse further sends; pending messages stay pollable."""

    @property
    @abc.abstractmethod
    def pending(self) -> int:
        """Number of queued messages."""


class InProcessTransport(Transport):
    """Thread-safe in-process FIFO adapter.

    The queue itself is unbounded: per-session backpressure lives in the
    engine's bounded ingress queues, which every scheduling round drains
    this FIFO into — so transport occupancy is bounded by one round's
    arrivals, and overload surfaces as *counted* session-level drops
    rather than silent growth here.
    """

    def __init__(self):
        self._messages: deque = deque()
        self._cond = threading.Condition()
        self._closed = False

    def send(self, message: Message) -> None:
        if not isinstance(message, (SessionOpen, SessionFrame,
                                    SessionClose)):
            raise ServeError(
                f"transport message must be SessionOpen/SessionFrame/"
                f"SessionClose, got {type(message).__name__}"
            )
        with self._cond:
            if self._closed:
                raise ServeError("transport is closed")
            self._messages.append(message)
            self._cond.notify_all()

    def poll(self, max_messages: int | None = None) -> list:
        with self._cond:
            if max_messages is None or max_messages >= len(self._messages):
                drained = list(self._messages)
                self._messages.clear()
            else:
                drained = [self._messages.popleft()
                           for _ in range(max_messages)]
            return drained

    def wait(self, timeout_s: float) -> bool:
        with self._cond:
            if self._messages:
                return True
            self._cond.wait(timeout_s)
            return bool(self._messages)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def pending(self) -> int:
        with self._cond:
            return len(self._messages)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed


__all__ = [
    "InProcessTransport",
    "Message",
    "SessionClose",
    "SessionFrame",
    "SessionOpen",
    "Transport",
]
