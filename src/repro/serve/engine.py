"""The session engine: one scheduler multiplexing many SLAM sessions.

:class:`ServeEngine` is the serving layer's core loop.  It drains the
transport port, routes messages to per-client :class:`~repro.serve.session.Session`
objects (each owning its own compiled graph ``PipelineInstance`` and
``FrameWorkspace`` arena — sessions share *nothing* mutable, which is
what makes concurrent streams bit-identical to serial ones), and runs
*scheduling rounds*: every round visits the sessions in deterministic
(creation) order and processes at most ``policy.frames_per_round``
frames each, so no client can starve the rest.

Overload handling is explicit end to end: ingress queues are bounded
(:class:`~repro.serve.session.ServePolicy`), full queues drop by the
configured policy with every drop counted, a crashing algorithm
quarantines only its own session, and the stats snapshot
(:meth:`ServeEngine.stats`) reports queue depths, drop counts, p50/p95
frame latency and sliding-window throughput per session and fleet-wide.

Two drive modes share all of that machinery:

* **synchronous** — tests and the differential/determinism harnesses
  call :meth:`step` / :meth:`run_until_idle` themselves; with an
  injected clock the whole engine is deterministic.
* **threaded** — :meth:`start` spawns the scheduler thread (the serving
  daemon of ``repro serve``); clients push into the transport from any
  thread while the engine processes.  The thread parks on
  ``transport.wait`` when idle instead of spinning.

Telemetry flows through the tracer captured at construction: per-frame
``serve.frame`` spans (session- and frame-stamped, wrapping the graph's
own per-stage spans), monotonic counters, and
:class:`~repro.telemetry.RateWindow`-backed rates via ``tracer.mark``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable

import numpy as np

from ..core.registry import create_algorithm, register_defaults
from ..errors import ReproError, ServeError
from ..telemetry import (
    RateWindow,
    current_tracer,
    monotonic_s,
    stage,
    use_tracer,
)
from .session import ServePolicy, Session, SessionState
from .transport import SessionClose, SessionFrame, SessionOpen, Transport

#: How long the threaded scheduler parks on an idle transport before
#: rechecking the stop flag (seconds).
IDLE_WAIT_S = 0.02


class ServeEngine:
    """Concurrent SLAM session manager and frame scheduler.

    Args:
        transport: the message port clients reach the engine through.
        policy: per-session backpressure/budget policy (shared default;
            a ``SessionOpen`` cannot override it — budgets are the
            operator's, not the client's).
        clock: monotonic-seconds source for ingress/latency accounting;
            tests inject a fake one for determinism.
        tracer: telemetry sink; defaults to the current tracer at
            construction so the threaded scheduler emits into the same
            tracer as the thread that built the engine.
    """

    def __init__(self, transport: Transport, policy: ServePolicy | None = None,
                 clock: Callable[[], float] = monotonic_s, tracer=None):
        register_defaults()
        self.transport = transport
        self.policy = policy if policy is not None else ServePolicy()
        self._clock = clock
        self._tracer = tracer if tracer is not None else current_tracer()
        self._sessions: dict[str, Session] = {}
        self._protocol_errors = 0
        self._protocol_log: deque = deque(maxlen=16)
        self._sessions_opened = 0
        self._sessions_closed = 0
        self._sessions_crashed = 0
        self._rounds = 0
        self._processed_rate = RateWindow(clock=clock)
        self._dropped_rate = RateWindow(clock=clock)
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()  # guards stats reads vs the loop

    # -- session table -------------------------------------------------------
    @property
    def sessions(self) -> dict[str, Session]:
        """Snapshot of the live session table."""
        with self._lock:
            return dict(self._sessions)

    def session(self, client_id: str) -> Session:
        with self._lock:
            try:
                return self._sessions[client_id]
            except KeyError:
                raise ServeError(
                    f"unknown session {client_id!r}; "
                    f"known: {sorted(self._sessions)}"
                ) from None

    def pending_frames(self) -> int:
        """Frames queued across runnable sessions (thread-safe)."""
        with self._lock:
            return self._pending_frames()

    def _pending_frames(self) -> int:
        # callers hold self._lock (non-reentrant: do not re-take it here)
        return sum(s.queue_depth for s in self._sessions.values()
                   if s.state in (SessionState.ACTIVE, SessionState.DRAINING))

    # -- message routing -----------------------------------------------------
    def _protocol_error(self, what: str) -> None:
        self._protocol_errors += 1
        self._protocol_log.append(what)
        self._tracer.count("serve.protocol_errors")

    def _handle_open(self, msg: SessionOpen) -> None:
        if msg.client_id in self._sessions:
            self._protocol_error(f"duplicate open {msg.client_id!r}")
            return
        try:
            system = create_algorithm(msg.algorithm, **msg.factory_kwargs)
            config = system.new_configuration()
            if msg.configuration:
                config.update(msg.configuration)
            with use_tracer(self._tracer):
                system.init(msg.sensors)
        except ReproError as exc:
            # A bad open (unknown algorithm, invalid configuration) is
            # the client's fault; the engine stays up.
            self._protocol_error(f"open {msg.client_id!r} failed: {exc}")
            return
        session = Session(msg.client_id, system, self.policy)
        self._sessions[msg.client_id] = session
        self._sessions_opened += 1
        self._tracer.count("serve.sessions_opened")

    def _handle_frame(self, msg: SessionFrame) -> None:
        session = self._sessions.get(msg.client_id)
        if session is None:
            self._protocol_error(f"frame for unknown session "
                                 f"{msg.client_id!r}")
            return
        admitted = session.enqueue(msg.frame, self._clock())
        self._tracer.count("serve.frames_received")
        if not admitted:
            self._dropped_rate.mark()
            self._tracer.mark("serve.frames_dropped")

    def _handle_close(self, msg: SessionClose) -> None:
        session = self._sessions.get(msg.client_id)
        if session is None:
            self._protocol_error(f"close for unknown session "
                                 f"{msg.client_id!r}")
            return
        session.begin_drain()

    def drain_transport(self, max_messages: int | None = None) -> int:
        """Route pending transport messages; returns how many."""
        messages = self.transport.poll(max_messages)
        for msg in messages:
            if isinstance(msg, SessionOpen):
                self._handle_open(msg)
            elif isinstance(msg, SessionFrame):
                self._handle_frame(msg)
            elif isinstance(msg, SessionClose):
                self._handle_close(msg)
            else:  # an adapter shipping foreign objects is an engine fault
                raise ServeError(
                    f"transport delivered {type(msg).__name__}, not a "
                    f"session message"
                )
        return len(messages)

    # -- frame processing ----------------------------------------------------
    def _process_one(self, session: Session) -> None:
        frame, ingress_s = session.take()
        system = session.system
        try:
            with stage(None, "serve.frame", session=session.client_id,
                       frame=frame.index) as timed:
                system.update_frame(frame.without_ground_truth())
                status = system.process_once()
                system.update_outputs()
            pose = np.array(system.outputs.pose(), dtype=np.float64)
        except Exception as exc:  # quarantine: one bad session, not the fleet
            session.mark_crashed(f"{type(exc).__name__}: {exc}")
            self._sessions_crashed += 1
            self._tracer.count("serve.sessions_crashed")
            try:
                system.clean()
            except Exception:
                pass  # release is best-effort on a crashed algorithm
            return
        latency_s = max(self._clock() - ingress_s, 0.0)
        session.record_result(frame.index, status.value, pose,
                              latency_s, timed.duration_s)
        self._processed_rate.mark()
        self._tracer.mark("serve.frames_processed")

    def _finish_drained(self, session: Session) -> None:
        try:
            session.system.clean()
        except ReproError:
            pass  # already-clean systems are fine to re-release
        session.mark_closed()
        self._sessions_closed += 1
        self._tracer.count("serve.sessions_closed")

    def step(self) -> int:
        """One scheduling round; returns frames processed.

        Drains the transport, then gives every runnable session up to
        ``policy.frames_per_round`` frames, visiting sessions in
        creation order — the deterministic multiplexing the
        concurrent-vs-serial equivalence test pins down.
        """
        with self._lock, use_tracer(self._tracer):
            self.drain_transport()
            processed = 0
            for session in list(self._sessions.values()):
                if session.state not in (SessionState.ACTIVE,
                                         SessionState.DRAINING):
                    continue
                budget = min(self.policy.frames_per_round,
                             session.queue_depth)
                for _ in range(budget):
                    if session.state is SessionState.CRASHED:
                        break
                    self._process_one(session)
                    processed += 1
                if (session.state is SessionState.DRAINING
                        and session.queue_depth == 0):
                    self._finish_drained(session)
            self._rounds += 1
            return processed

    def run_until_idle(self, max_rounds: int = 100_000) -> int:
        """Step until no messages or frames remain; returns frames run.

        ``max_rounds`` is a deadlock tripwire: exceeding it raises
        :class:`ServeError` instead of hanging the caller — the overload
        tests lean on this to prove budgets always make progress.
        """
        total = 0
        for _ in range(max_rounds):
            processed = self.step()
            total += processed
            if (processed == 0 and self.transport.pending == 0
                    and self.pending_frames() == 0):
                return total
        raise ServeError(
            f"run_until_idle did not converge in {max_rounds} rounds "
            f"({self.transport.pending} messages, "
            f"{self.pending_frames()} frames pending)"
        )

    # -- threaded mode -------------------------------------------------------
    @property
    def running(self) -> bool:
        with self._lock:
            return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Spawn the scheduler thread (idempotent start is an error)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                raise ServeError("engine already running")
            self._stop.clear()
            self._thread = threading.Thread(target=self._serve_loop,
                                            name="repro-serve", daemon=True)
            self._thread.start()

    def _serve_loop(self) -> None:
        while not self._stop.is_set():
            processed = self.step()
            if (processed == 0 and self.transport.pending == 0
                    and self.pending_frames() == 0):
                self.transport.wait(IDLE_WAIT_S)

    def stop(self, drain: bool = True) -> None:
        """Stop the scheduler thread; optionally finish queued work first."""
        with self._lock:
            thread = self._thread
        if thread is None:
            return
        if drain:
            # Let the loop keep running until everything pending is done,
            # then flag it down; new sends may still race in and are
            # simply served next start (or left pollable).
            while (self.transport.pending or self.pending_frames()):
                if not thread.is_alive():
                    break
                self.transport.wait(IDLE_WAIT_S)
        self._stop.set()
        thread.join()  # outside the lock: the loop needs it to finish
        with self._lock:
            self._thread = None

    def close(self) -> None:
        """Stop (without draining), close the transport, release sessions."""
        self.stop(drain=False)
        self.transport.close()
        with self._lock:
            for session in self._sessions.values():
                if session.state in (SessionState.ACTIVE,
                                     SessionState.DRAINING):
                    self._finish_drained(session)

    def __enter__(self) -> "ServeEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- stats ---------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-safe health/stats snapshot of the whole engine.

        Safe to call from any thread (takes the scheduling lock, so a
        snapshot never observes a half-processed round).
        """
        with self._lock:
            states: dict[str, int] = {}
            latencies: list[float] = []
            received = processed = dropped = 0
            per_session = {}
            for cid, session in self._sessions.items():
                states[session.state.value] = (
                    states.get(session.state.value, 0) + 1
                )
                received += session.frames_received
                processed += session.frames_processed
                dropped += session.frames_dropped
                latencies.extend(session.latency_samples)
                per_session[cid] = session.stats()
            if latencies:
                arr = np.asarray(latencies, dtype=np.float64)
                p50 = float(np.percentile(arr, 50))
                p95 = float(np.percentile(arr, 95))
            else:
                p50 = p95 = 0.0
            return {
                "sessions": {
                    "opened": self._sessions_opened,
                    "closed": self._sessions_closed,
                    "crashed": self._sessions_crashed,
                    "by_state": states,
                },
                "frames": {
                    "received": received,
                    "processed": processed,
                    "dropped": dropped,
                    "drop_rate": (dropped / received) if received else 0.0,
                },
                "latency": {"p50_s": p50, "p95_s": p95},
                "throughput": {
                    "processed_fps": self._processed_rate.rate(),
                    "dropped_fps": self._dropped_rate.rate(),
                },
                "queue_depth": self._pending_frames(),
                "protocol_errors": self._protocol_errors,
                "recent_protocol_errors": list(self._protocol_log),
                "rounds": self._rounds,
                "per_session": per_session,
            }


__all__ = ["IDLE_WAIT_S", "ServeEngine"]
