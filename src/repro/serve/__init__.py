"""SLAM-as-a-service: the concurrent session engine (S21).

The paper's frontier is only useful if something *serves* it: this
package runs many independent SLAM sessions at once behind a swappable
transport boundary, with explicit backpressure, per-session budgets, and
live health stats.

* :mod:`~repro.serve.transport` — the ports/adapters seam: the session
  message protocol and the in-process queue adapter (a socket adapter
  slots in later without touching the engine).
* :mod:`~repro.serve.session` — one client's state: bounded ingress
  queue, drop accounting, pose/status result log.
* :mod:`~repro.serve.engine` — the scheduler: deterministic round-robin
  multiplexing under per-session frame budgets, crash quarantine,
  telemetry-backed stats; synchronous stepping for tests and a scheduler
  thread for serving.
* :mod:`~repro.serve.loadgen` — heavy-tailed multi-client load
  generator and replay harness feeding ``repro serve`` and
  ``bench_serve``.
"""

from .engine import ServeEngine
from .loadgen import (
    ClientPlan,
    LoadEvent,
    LoadReport,
    LoadSpec,
    build_schedule,
    run_load,
)
from .session import (
    DROP_POLICIES,
    FrameResult,
    ServePolicy,
    Session,
    SessionState,
)
from .transport import (
    InProcessTransport,
    SessionClose,
    SessionFrame,
    SessionOpen,
    Transport,
)

__all__ = [
    "DROP_POLICIES",
    "ClientPlan",
    "FrameResult",
    "InProcessTransport",
    "LoadEvent",
    "LoadReport",
    "LoadSpec",
    "ServeEngine",
    "ServePolicy",
    "Session",
    "SessionClose",
    "SessionFrame",
    "SessionOpen",
    "SessionState",
    "Transport",
    "build_schedule",
    "run_load",
]
