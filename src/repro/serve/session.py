"""One client's SLAM session: bounded ingress, budgets, result log.

A :class:`Session` owns everything single-client: the SLAM system (whose
``do_init`` compiled the per-session graph ``PipelineInstance`` and
allocated the per-session ``FrameWorkspace`` arena), the *bounded*
ingress queue client frames wait in, the drop/latency accounting, and
the per-frame pose/status log the determinism tests compare against
serial runs.

Backpressure is the session's one job under overload: the ingress queue
holds at most ``policy.queue_capacity`` frames, and when a frame arrives
at a full queue the configured :data:`DROP_POLICIES` member decides
which frame dies — ``"oldest"`` (the default: latest-wins, a real-time
localisation client wants fresh frames, not a growing backlog) or
``"newest"`` (reject the arrival, first-committed wins).  Either way the
drop is *counted*, never silent.

The scheduler-facing budget is ``policy.frames_per_round``: the most
frames one session may process per scheduling round, so a client
flooding its queue cannot starve the other sessions of the shared
engine thread.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..errors import ServeError

#: Recognised full-queue drop policies.
DROP_POLICIES = ("oldest", "newest")


@dataclass(frozen=True)
class ServePolicy:
    """Per-session backpressure and scheduling budgets.

    Attributes:
        queue_capacity: bounded ingress queue length; arrivals beyond it
            trigger the drop policy.
        frames_per_round: scheduling budget — max frames processed per
            engine round for one session.
        drop_policy: ``"oldest"`` evicts the stalest queued frame to
            admit the arrival; ``"newest"`` rejects the arrival.
        max_latency_samples: ring size of retained per-frame latency
            samples (p50/p95 windows stay O(1) memory under load).
    """

    queue_capacity: int = 8
    frames_per_round: int = 4
    drop_policy: str = "oldest"
    max_latency_samples: int = 2048

    def __post_init__(self):
        if self.queue_capacity < 1:
            raise ServeError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.frames_per_round < 1:
            raise ServeError(
                f"frames_per_round must be >= 1, got {self.frames_per_round}"
            )
        if self.drop_policy not in DROP_POLICIES:
            raise ServeError(
                f"unknown drop_policy {self.drop_policy!r}; "
                f"choices: {DROP_POLICIES}"
            )
        if self.max_latency_samples < 1:
            raise ServeError(
                f"max_latency_samples must be >= 1, "
                f"got {self.max_latency_samples}"
            )


class SessionState(enum.Enum):
    """Lifecycle of one serving session."""

    ACTIVE = "active"        #: accepting and processing frames
    DRAINING = "draining"    #: close received; queued frames still run
    CLOSED = "closed"        #: cleanly finished, system released
    CRASHED = "crashed"      #: algorithm raised; quarantined, error kept


@dataclass(frozen=True)
class FrameResult:
    """Per-processed-frame record (the serial-equivalence unit)."""

    frame_index: int
    status: str          #: TrackingStatus.value
    pose: bytes          #: 4x4 float64 pose, raw bytes (bit-comparable)
    latency_s: float     #: ingress-to-completion, engine clock
    duration_s: float    #: processing wall time


class Session:
    """State and accounting for one client's stream.

    Created by the engine on :class:`~repro.serve.transport.SessionOpen`
    with an initialised SLAM system; driven exclusively from the engine's
    scheduler thread (enqueue and process never race — the engine drains
    the transport and schedules rounds on one thread).
    """

    def __init__(self, client_id: str, system, policy: ServePolicy):
        self.client_id = client_id
        self.system = system
        self.policy = policy
        self.state = SessionState.ACTIVE
        self.error: str | None = None
        #: queued (frame, ingress_time_s) pairs, bounded by the policy.
        self._queue: deque = deque()
        self.frames_received = 0
        self.frames_processed = 0
        self.frames_dropped = 0
        self.results: list[FrameResult] = []
        self._latencies: deque = deque(maxlen=policy.max_latency_samples)

    # -- ingress ------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def accepting(self) -> bool:
        return self.state is SessionState.ACTIVE

    def enqueue(self, frame, now_s: float) -> bool:
        """Admit ``frame`` under the bounded-queue drop policy.

        Returns ``True`` if the frame was queued, ``False`` if it (or an
        older frame, under ``"oldest"``) was dropped.  Frames sent to a
        draining/closed/crashed session are dropped and counted too —
        the client is racing the close, and losing that race must not
        grow state.
        """
        self.frames_received += 1
        if self.state is not SessionState.ACTIVE:
            self.frames_dropped += 1
            return False
        if len(self._queue) >= self.policy.queue_capacity:
            self.frames_dropped += 1
            if self.policy.drop_policy == "newest":
                return False
            self._queue.popleft()  # "oldest": evict, then admit below
        self._queue.append((frame, now_s))
        return True

    def begin_drain(self) -> None:
        """Close received: stop admitting, keep processing the backlog."""
        if self.state is SessionState.ACTIVE:
            self.state = SessionState.DRAINING

    # -- processing --------------------------------------------------------
    def take(self):
        """Pop the next queued ``(frame, ingress_time_s)`` pair."""
        if not self._queue:
            raise ServeError(
                f"session {self.client_id!r}: take() on an empty queue"
            )
        return self._queue.popleft()

    def record_result(self, frame_index: int, status: str, pose,
                      latency_s: float, duration_s: float) -> None:
        self.frames_processed += 1
        self._latencies.append(latency_s)
        self.results.append(FrameResult(
            frame_index=frame_index,
            status=status,
            pose=np.asarray(pose, dtype=np.float64).tobytes(),
            latency_s=latency_s,
            duration_s=duration_s,
        ))

    def mark_crashed(self, error: str) -> None:
        """Quarantine: record the failure, drop the backlog (counted)."""
        self.state = SessionState.CRASHED
        self.error = error
        self.frames_dropped += len(self._queue)
        self._queue.clear()

    def mark_closed(self) -> None:
        self.state = SessionState.CLOSED

    # -- stats --------------------------------------------------------------
    @property
    def latency_samples(self) -> tuple:
        """Retained per-frame latency samples (seconds, oldest first)."""
        return tuple(self._latencies)

    def latency_percentiles(self) -> tuple[float, float]:
        """(p50, p95) seconds over the retained latency samples."""
        if not self._latencies:
            return (0.0, 0.0)
        arr = np.fromiter(self._latencies, dtype=np.float64)
        return (float(np.percentile(arr, 50)), float(np.percentile(arr, 95)))

    def stats(self) -> dict:
        """JSON-safe per-session health snapshot."""
        p50, p95 = self.latency_percentiles()
        last = self.results[-1] if self.results else None
        return {
            "state": self.state.value,
            "queue_depth": self.queue_depth,
            "frames_received": self.frames_received,
            "frames_processed": self.frames_processed,
            "frames_dropped": self.frames_dropped,
            "latency_p50_s": p50,
            "latency_p95_s": p95,
            "last_status": last.status if last else None,
            "error": self.error,
        }

    def status_sequence(self) -> list[str]:
        return [r.status for r in self.results]

    def pose_sequence(self) -> list[bytes]:
        return [r.pose for r in self.results]


__all__ = [
    "DROP_POLICIES",
    "FrameResult",
    "ServePolicy",
    "Session",
    "SessionState",
]
