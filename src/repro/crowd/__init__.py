"""Android crowdsourcing study: device campaign, analysis, decisions."""

from .analysis import (CampaignSummary, by_group, device_table,
                       speedup_drivers, summarize)
from .campaign import DeviceRun, algorithmic_only, run_campaign
from .decision_machine import (
    PORTFOLIO,
    DecisionEvaluation,
    DecisionMachine,
    device_features,
    oracle_label,
    portfolio_fps,
    portfolio_params,
    train_test_devices,
)

__all__ = [
    "CampaignSummary",
    "by_group",
    "device_table",
    "speedup_drivers",
    "summarize",
    "DeviceRun",
    "algorithmic_only",
    "run_campaign",
    "PORTFOLIO",
    "DecisionEvaluation",
    "DecisionMachine",
    "device_features",
    "oracle_label",
    "portfolio_fps",
    "portfolio_params",
    "train_test_devices",
]
