"""Analysis of the crowdsourcing campaign — Figure 3's right panel.

Turns the per-device runs into the speed-up distribution the paper plots
(one bar per device, 0-14x range), plus summary statistics and breakdowns
by form factor and device year that support the paper's "train a decision
machine for mobile phones" discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.report import format_histogram, format_table
from ..errors import SimulationError
from ..metrics.summary import SeriesSummary, geometric_mean
from .campaign import DeviceRun


@dataclass(frozen=True)
class CampaignSummary:
    """Aggregate view of the campaign."""

    devices: int
    speedups: np.ndarray
    summary: SeriesSummary
    geometric_mean: float
    realtime_default: int  # devices at >= 25 FPS with the default config
    realtime_tuned: int

    def histogram(self, n_bins: int = 14) -> str:
        return format_histogram(
            self.speedups,
            n_bins=n_bins,
            lo=0.0,
            hi=float(np.ceil(self.speedups.max())),
            label=f"Speed-up of the HyperMapper configuration over the "
            f"default across {self.devices} devices",
        )


def summarize(runs: list[DeviceRun], realtime_fps: float = 25.0) -> CampaignSummary:
    """Compute the Figure 3 statistics."""
    if not runs:
        raise SimulationError("no campaign runs to summarise")
    speedups = np.array([r.speedup for r in runs])
    return CampaignSummary(
        devices=len(runs),
        speedups=speedups,
        summary=SeriesSummary.of(speedups),
        geometric_mean=geometric_mean(speedups),
        realtime_default=int(sum(r.default_fps >= realtime_fps for r in runs)),
        realtime_tuned=int(sum(r.tuned_fps >= realtime_fps for r in runs)),
    )


def by_group(runs: list[DeviceRun], key: str) -> list[dict]:
    """Group speed-up statistics by a DeviceRun attribute (year, form...)."""
    if not runs:
        raise SimulationError("no campaign runs to group")
    groups: dict = {}
    for r in runs:
        groups.setdefault(getattr(r, key), []).append(r.speedup)
    rows = []
    for g in sorted(groups):
        vals = np.array(groups[g])
        rows.append(
            {
                key: g,
                "devices": len(vals),
                "speedup_median": float(np.median(vals)),
                "speedup_min": float(vals.min()),
                "speedup_max": float(vals.max()),
            }
        )
    return rows


def speedup_drivers(runs: list[DeviceRun],
                    n_trees: int = 40, seed: int = 0) -> list[dict]:
    """Which device properties explain the speed-up spread?

    Fits a random forest from device features to the observed speed-up
    and returns the feature importances — the quantitative version of
    "newer GPUs gain more", feeding the decision-machine discussion.
    """
    if len(runs) < 10:
        raise SimulationError("need >= 10 runs to analyse drivers")
    from ..ml.forest import RandomForestRegressor
    from ..platforms.phones import phone_database
    from .decision_machine import FEATURE_NAMES, device_features

    by_name = {d.name: d for d in phone_database()}
    X, y = [], []
    for r in runs:
        device = by_name.get(r.device)
        if device is None:
            continue
        X.append(device_features(device))
        y.append(r.speedup)
    if len(X) < 10:
        raise SimulationError("too few runs matched the device database")
    forest = RandomForestRegressor(n_trees=n_trees, random_state=seed)
    forest.fit(np.stack(X), np.asarray(y))
    importances = forest.feature_importances()
    rows = [
        {"feature": name, "importance": float(imp)}
        for name, imp in zip(FEATURE_NAMES, importances)
    ]
    rows.sort(key=lambda r: -r["importance"])
    return rows


def device_table(runs: list[DeviceRun], top: int | None = None) -> str:
    """Per-device table sorted by speed-up (the figure's bar order)."""
    rows = sorted(runs, key=lambda r: r.speedup)
    if top is not None:
        rows = rows[-top:]
    return format_table(
        [
            {
                "device": r.device,
                "gpu": r.soc_gpu,
                "year": r.year,
                "default_fps": r.default_fps,
                "tuned_fps": r.tuned_fps,
                "speedup": r.speedup,
            }
            for r in rows
        ],
        title="Crowdsourced devices (sorted by speed-up)",
    )
