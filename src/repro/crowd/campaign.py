"""Simulation of the Android crowdsourcing campaign (Figure 3).

The SLAMBench Android app ran the OpenCL KinectFusion on phones in the
wild; each install reported frame times for the default configuration and
for the configuration HyperMapper found on the ODROID-XU3.  We regenerate
the campaign over the 83-device database: per device, the analytic
workload model is simulated on the device model, with a deterministic
per-device *field factor* (thermal throttling, background load, driver
quality) so the population shows the real study's scatter.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..errors import SimulationError
from ..kfusion.params import DEFAULTS, KFusionParams
from ..kfusion.workload_model import sequence_workloads
from ..platforms.device import DeviceModel
from ..platforms.phones import phone_database
from ..platforms.simulator import PerformanceSimulator, PlatformConfig

#: Keys that make sense only on the device they were tuned for.
PLATFORM_KEYS = ("backend", "cpu_freq_ghz", "gpu_freq_ghz")


@dataclass(frozen=True)
class DeviceRun:
    """One device's campaign entry."""

    device: str
    soc_gpu: str
    year: int
    form_factor: str
    default_fps: float
    tuned_fps: float
    default_power_w: float
    tuned_power_w: float
    field_factor: float

    @property
    def speedup(self) -> float:
        return self.tuned_fps / self.default_fps


def _field_factor(device_name: str, seed: int) -> float:
    """Deterministic per-device slowdown (background load, drivers).

    Log-normal around 0.8x with moderate spread — crowdsourced numbers are
    always below lab numbers and noisy across installs.
    """
    digest = hashlib.sha256(f"{device_name}|{seed}".encode()).digest()
    u1 = int.from_bytes(digest[:8], "big") / 2**64
    u2 = int.from_bytes(digest[8:16], "big") / 2**64
    z = np.sqrt(-2.0 * np.log(max(u1, 1e-12))) * np.cos(2.0 * np.pi * u2)
    return float(np.clip(0.8 * np.exp(0.18 * z), 0.35, 1.2))


def _sustained_power_budget_w(device: DeviceModel, seed: int) -> float:
    """Power a device can dissipate indefinitely without throttling.

    Phones sustain roughly 1.5-3 W, tablets and boards more; the exact
    value varies with chassis and ambient conditions, which we draw
    deterministically per device.
    """
    digest = hashlib.sha256(f"budget|{device.name}|{seed}".encode()).digest()
    u = int.from_bytes(digest[:8], "big") / 2**64
    base = {"phone": 1.6, "tablet": 2.6, "board": 3.5}.get(
        device.form_factor, 1.8
    )
    return base + 1.2 * u


#: The kernels whose per-device efficiency we perturb (all GPU-side).
_PORTABILITY_KERNELS = (
    "bilateral_filter", "half_sample", "depth2vertex", "vertex2normal",
    "track", "reduce", "integrate", "raycast", "downsample", "acquire",
)


def _kernel_efficiencies(device: DeviceModel, seed: int) -> dict:
    """Per-kernel throughput factors for one device.

    OpenCL performance portability is poor: a kernel tuned for the Mali on
    the ODROID may hit 40-100% of a different GPU's sustained rate
    depending on register pressure, local-memory use and compiler
    maturity.  Drawn deterministically per (device, kernel).
    """
    out = {}
    for kernel in _PORTABILITY_KERNELS:
        digest = hashlib.sha256(
            f"eff|{device.name}|{kernel}|{seed}".encode()
        ).digest()
        u = int.from_bytes(digest[:8], "big") / 2**64
        out[kernel] = 0.4 + 0.6 * u
    return out


def _throttle(streaming_power_w: float, budget_w: float) -> float:
    """Sustained-clock slowdown when average power exceeds the budget.

    A configuration drawing under the budget runs at burst clocks
    (factor 1); beyond it, DVFS steps the clocks down roughly in
    proportion to the excess (cubic power vs frequency makes the required
    frequency drop sub-linear, hence the 0.75 exponent).
    """
    if streaming_power_w <= budget_w:
        return 1.0
    return float((streaming_power_w / budget_w) ** 0.75)


def algorithmic_only(configuration: Mapping) -> dict:
    """Strip device-specific platform knobs from a tuned configuration."""
    return {k: v for k, v in configuration.items() if k not in PLATFORM_KEYS}


def simulate_device(device: DeviceModel, default_wl, tuned_wl,
                    seed: int) -> DeviceRun:
    """Default + tuned campaign runs of one device.

    Module-level so the worker pool can ship it by name: the crowd
    fan-out sends ``(default_wl, tuned_wl, seed)`` once per worker and
    one device per job (see :func:`repro.jobs.tasks.simulate_campaign_device`).
    """
    backend = "opencl" if device.supports_backend("opencl") else "openmp"
    sim = PerformanceSimulator(
        device,
        PlatformConfig(
            backend=backend,
            kernel_efficiency=_kernel_efficiencies(device, seed),
        ),
    )
    res_default = sim.simulate(default_wl)
    res_tuned = sim.simulate(tuned_wl)
    factor = _field_factor(device.name, seed)
    budget = _sustained_power_budget_w(device, seed)
    default_power = res_default.streaming_average_power_w()
    tuned_power = res_tuned.streaming_average_power_w()
    # Thermal throttling: the heavy default configuration exceeds the
    # sustained budget on most phones and loses its burst clocks; the
    # tuned configuration usually stays within it.  This is the main
    # source of cross-device spread in the crowdsourced speed-ups.
    default_fps = res_default.fps * factor / _throttle(default_power, budget)
    tuned_fps = res_tuned.fps * factor / _throttle(tuned_power, budget)
    return DeviceRun(
        device=device.name,
        soc_gpu=device.gpu.name if device.gpu else "none",
        year=device.year,
        form_factor=device.form_factor,
        default_fps=default_fps,
        tuned_fps=tuned_fps,
        default_power_w=default_power,
        tuned_power_w=tuned_power,
        field_factor=factor,
    )


def run_campaign(
    tuned_configuration: Mapping,
    devices: list[DeviceModel] | None = None,
    width: int = 320,
    height: int = 240,
    n_frames: int = 30,
    seed: int = 0,
    workers: int = 1,
    runner=None,
) -> list[DeviceRun]:
    """Run default and tuned configurations on every device.

    ``tuned_configuration`` is the HyperMapper result from the ODROID; its
    platform knobs are stripped (phones run their own clocks), keeping the
    algorithmic parameters — exactly what the Android app shipped.

    With ``workers > 1`` (or an explicit :class:`repro.jobs.JobRunner`)
    the devices fan out over a worker pool; every device's numbers are
    pure functions of ``(device, workloads, seed)``, so the result is
    identical at any worker count.
    """
    devices = devices if devices is not None else phone_database()
    if not devices:
        raise SimulationError("no devices to run the campaign on")

    tuned = algorithmic_only(dict(tuned_configuration))
    missing = set(DEFAULTS) - set(tuned)
    if missing:
        raise SimulationError(
            f"tuned configuration missing parameters: {sorted(missing)}"
        )
    default_params = KFusionParams()
    tuned_params = KFusionParams(**{k: tuned[k] for k in DEFAULTS})

    default_wl = sequence_workloads(default_params, width, height, n_frames)
    tuned_wl = sequence_workloads(tuned_params, width, height, n_frames)

    if runner is not None or workers > 1:
        from ..jobs import JobRunner
        from ..jobs.tasks import simulate_campaign_device

        shared = (default_wl, tuned_wl, seed)
        if runner is not None:
            return runner.map(simulate_campaign_device, devices,
                              shared=shared)
        with JobRunner(workers=workers, seed=seed) as owned:
            return owned.map(simulate_campaign_device, devices,
                             shared=shared)

    return [simulate_device(device, default_wl, tuned_wl, seed)
            for device in devices]
