"""The "decision machine for mobile phones" — the poster's future work.

    "We now plan to use this data to ... provide techniques to optimise
    KinectFusion performance depending of the targeted platform.  We
    believe that by combining the potential of HyperMapper and the data
    collected on Android, we could train a decision machine for mobile
    phones."

This module builds exactly that, end to end:

1. a **portfolio** of configurations spanning the accuracy/speed
   trade-off (all accuracy-feasible on the surrogate, ordered from most
   accurate to fastest);
2. **training data** from the crowd: every training device runs the whole
   portfolio (campaign simulation) and is labelled with the *most
   accurate portfolio entry that still reaches the FPS target* on it —
   the per-device decision an installer would want;
3. a **random-forest classifier** from device features (GPU throughput,
   bandwidths, CPU class, year, form factor) to that label;
4. **evaluation** on held-out devices against the oracle label and
   against shipping one fixed configuration to everyone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import OptimizationError, SimulationError
from ..kfusion.params import KFusionParams
from ..kfusion.workload_model import sequence_workloads
from ..ml.forest import RandomForestClassifier
from ..platforms.device import DeviceModel
from ..platforms.phones import phone_database
from ..platforms.simulator import PerformanceSimulator, PlatformConfig

#: The configuration portfolio, most accurate first.  Entries were chosen
#: along the accuracy-feasible front of the Figure 2 exploration; index
#: is the quality rank (0 = best model quality).
PORTFOLIO: tuple[dict, ...] = (
    {"volume_resolution": 256, "compute_size_ratio": 1,
     "integration_rate": 1, "pyramid_iterations_l0": 10},
    {"volume_resolution": 256, "compute_size_ratio": 1,
     "integration_rate": 2, "pyramid_iterations_l0": 10},
    {"volume_resolution": 192, "compute_size_ratio": 2,
     "integration_rate": 2, "pyramid_iterations_l0": 8},
    {"volume_resolution": 128, "compute_size_ratio": 2,
     "integration_rate": 3, "pyramid_iterations_l0": 8},
    {"volume_resolution": 96, "compute_size_ratio": 4,
     "integration_rate": 4, "pyramid_iterations_l0": 6},
    {"volume_resolution": 64, "compute_size_ratio": 4,
     "integration_rate": 6, "pyramid_iterations_l0": 6},
)

_BASE = {
    "volume_size": 4.8,
    "mu_distance": 0.1,
    "icp_threshold": 1e-5,
    "pyramid_iterations_l1": 4,
    "pyramid_iterations_l2": 4,
    "tracking_rate": 1,
}


def portfolio_params(index: int) -> KFusionParams:
    """Full typed parameters for portfolio entry ``index``."""
    if not 0 <= index < len(PORTFOLIO):
        raise OptimizationError(
            f"portfolio index {index} outside [0, {len(PORTFOLIO)})"
        )
    return KFusionParams(**{**_BASE, **PORTFOLIO[index]})


def device_features(device: DeviceModel) -> np.ndarray:
    """Encode a device as a feature vector for the classifier."""
    big = device.biggest_cluster
    gpu = device.gpu
    form = {"phone": 0.0, "tablet": 1.0, "board": 2.0}.get(
        device.form_factor, 0.0
    )
    return np.array([
        gpu.gflops if gpu else 0.0,
        gpu.bandwidth_gbs if gpu else 0.0,
        device.memory_bandwidth_gbs,
        big.max_freq_ghz * big.flops_per_cycle * big.cores,
        float(device.total_cores),
        device.kernel_launch_overhead_s * 1e6,
        float(device.year),
        form,
    ])


FEATURE_NAMES = (
    "gpu_gflops", "gpu_bandwidth_gbs", "mem_bandwidth_gbs",
    "cpu_gflops_class", "total_cores", "launch_overhead_us", "year",
    "form_factor",
)


def portfolio_fps(device: DeviceModel, width: int = 320, height: int = 240,
                  n_frames: int = 15) -> list[float]:
    """Simulated FPS of every portfolio entry on ``device``."""
    backend = "opencl" if device.supports_backend("opencl") else "openmp"
    sim = PerformanceSimulator(device, PlatformConfig(backend=backend))
    out = []
    for index in range(len(PORTFOLIO)):
        workloads = sequence_workloads(
            portfolio_params(index), width, height, n_frames
        )
        out.append(sim.simulate(workloads).fps)
    return out


def oracle_label(fps_per_entry: list[float], target_fps: float = 30.0) -> int:
    """Most accurate portfolio entry meeting the FPS target (else fastest)."""
    for index, fps in enumerate(fps_per_entry):
        if fps >= target_fps:
            return index
    return len(fps_per_entry) - 1


@dataclass(frozen=True)
class DecisionEvaluation:
    """Held-out evaluation of the decision machine."""

    devices: int
    exact_match: float  # predicted == oracle label
    within_one: float  # |predicted - oracle| <= 1
    realtime_fraction: float  # predicted config meets the FPS target
    oracle_realtime_fraction: float
    fixed_realtime_fraction: float  # one fixed config for everyone
    mean_quality_regret: float  # mean (predicted - oracle) quality index
    mean_quality_loss_fixed: float  # same regret for the fixed config


class DecisionMachine:
    """Device specs -> portfolio choice."""

    def __init__(self, target_fps: float = 30.0, n_trees: int = 40,
                 seed: int = 0):
        self.target_fps = target_fps
        self.n_trees = n_trees
        self.seed = seed
        self._forest: RandomForestClassifier | None = None

    def fit(self, devices: list[DeviceModel]) -> "DecisionMachine":
        """Label the training devices by simulation and fit the forest."""
        if len(devices) < 5:
            raise OptimizationError("need >= 5 training devices")
        X = np.stack([device_features(d) for d in devices])
        y = np.array([
            oracle_label(portfolio_fps(d), self.target_fps) for d in devices
        ])
        self._forest = RandomForestClassifier(
            n_trees=self.n_trees, max_depth=8, random_state=self.seed
        )
        self._forest.fit(X, y)
        return self

    def predict(self, device: DeviceModel) -> int:
        """Portfolio index recommended for ``device``."""
        if self._forest is None:
            raise OptimizationError("decision machine is not fitted")
        return int(self._forest.predict(
            device_features(device).reshape(1, -1)
        )[0])

    def recommend(self, device: DeviceModel) -> KFusionParams:
        """Full configuration recommended for ``device``."""
        return portfolio_params(self.predict(device))

    def evaluate(self, devices: list[DeviceModel],
                 fixed_index: int = 2) -> DecisionEvaluation:
        """Score predictions on (held-out) devices against the oracle."""
        if self._forest is None:
            raise OptimizationError("decision machine is not fitted")
        if not devices:
            raise SimulationError("no devices to evaluate on")
        exact = within1 = rt_pred = rt_oracle = rt_fixed = 0
        regret = 0.0
        fixed_loss = 0.0
        for device in devices:
            fps = portfolio_fps(device)
            oracle = oracle_label(fps, self.target_fps)
            predicted = self.predict(device)
            exact += predicted == oracle
            within1 += abs(predicted - oracle) <= 1
            rt_pred += fps[predicted] >= self.target_fps
            rt_oracle += fps[oracle] >= self.target_fps
            rt_fixed += fps[fixed_index] >= self.target_fps
            regret += max(0, predicted - oracle)
            fixed_loss += max(0, fixed_index - oracle)
        n = len(devices)
        return DecisionEvaluation(
            devices=n,
            exact_match=exact / n,
            within_one=within1 / n,
            realtime_fraction=rt_pred / n,
            oracle_realtime_fraction=rt_oracle / n,
            fixed_realtime_fraction=rt_fixed / n,
            mean_quality_regret=regret / n,
            mean_quality_loss_fixed=fixed_loss / n,
        )


def train_test_devices(
    test_fraction: float = 0.3, seed: int = 0
) -> tuple[list[DeviceModel], list[DeviceModel]]:
    """Split the 83-device database into train/test."""
    devices = phone_database()
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(devices))
    n_test = max(1, int(len(devices) * test_fraction))
    test_idx = set(order[:n_test].tolist())
    train = [d for i, d in enumerate(devices) if i not in test_idx]
    test = [d for i, d in enumerate(devices) if i in test_idx]
    return train, test
