"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors (``TypeError``, ``AttributeError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An algorithm or experiment configuration is invalid.

    Raised when a parameter value is outside its declared bounds, a required
    parameter is missing, or mutually inconsistent values are supplied.
    """


class GeometryError(ReproError):
    """An operation on poses, cameras or point clouds received invalid data."""


class DatasetError(ReproError):
    """A dataset could not be generated, loaded, or validated."""


class TrackingError(ReproError):
    """The tracker could not produce a pose estimate.

    Carries the frame index at which tracking failed when available.
    """

    def __init__(self, message: str, frame_index: int | None = None):
        super().__init__(message)
        self.frame_index = frame_index


class SimulationError(ReproError):
    """The platform/performance simulator was asked for something impossible."""


class OptimizationError(ReproError):
    """The design-space exploration could not proceed (empty space, ...)."""


class ModelError(ReproError):
    """A machine-learning model was used before fitting or with bad shapes."""


class ReportError(ReproError):
    """A report/export helper was asked to render invalid or empty data."""


class PerfError(ReproError):
    """The fast-path kernel backend violated one of its invariants.

    Raised when the preallocated :class:`~repro.perf.FrameWorkspace`
    would exceed the byte budget derived from :mod:`repro.kfusion.memory`,
    or when an unknown kernel backend is requested.  Never raised on a
    healthy run — it marks a sizing/registration bug, not bad data.
    """


class GraphError(ReproError):
    """A stage-graph definition failed to validate or compile.

    Raised by :mod:`repro.graph` when a pipeline graph names an
    unregistered stage, wires contract-mismatched ports, leaves an input
    unfed (or feeds it twice), contains a cycle, or declares an effect
    budget its layer forbids.  Always raised at *compile* time — a graph
    that compiled never raises this while running.
    """


class StageExecutionError(GraphError):
    """A stage raised while a compiled pipeline was running it.

    Carries the failing stage's node name (and the frame index when
    known) so mid-graph failures are attributable without digging
    through the traceback; the original exception is chained as
    ``__cause__``.
    """

    def __init__(self, message: str, stage: str,
                 frame_index: int | None = None):
        super().__init__(message)
        self.stage = stage
        self.frame_index = frame_index


class JobError(ReproError):
    """The parallel evaluation engine could not run or persist a job.

    Raised for infrastructure failures — a worker crashing repeatedly, a
    job exceeding its timeout budget after every retry, an unreadable or
    mismatched evaluation store.  *Evaluation* failures (a configuration
    that diverges) are not job errors: they come back as
    ``Evaluation(failed=True)`` so a search can keep going.
    """


class ServeError(ReproError):
    """The serving layer was misused or a session protocol was violated.

    Raised by :mod:`repro.serve` for engine-level faults — invalid
    budgets or drop policies, stepping a stopped engine, an adapter
    violating the transport port contract.  Client *protocol* mistakes
    (opening a session id twice, streaming to an unknown session) are
    counted as protocol errors rather than raised, and a SLAM
    *algorithm* failure inside a session is not a serve error either:
    the engine quarantines it (the session is marked crashed, its error
    recorded in the stats report) and keeps serving every other client.
    """
