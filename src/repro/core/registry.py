"""Algorithm and dataset registries.

SLAMBench discovers algorithms as shared libraries and datasets as
``.slam`` files; the Python equivalent is a name -> factory registry so
experiments and the CLI-style examples can instantiate systems and
sequences by name.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigurationError

_ALGORITHMS: dict[str, Callable] = {}
_DATASETS: dict[str, Callable] = {}


def register_algorithm(name: str, factory: Callable) -> None:
    """Register a SLAM system factory under ``name``."""
    if name in _ALGORITHMS:
        raise ConfigurationError(f"algorithm {name!r} already registered")
    _ALGORITHMS[name] = factory


def create_algorithm(name: str, **kwargs):
    """Instantiate a registered SLAM system.

    Keyword arguments are forwarded to the factory (e.g.
    ``create_algorithm("kfusion", kernel_backend="reference")``); a
    factory that does not accept them raises ``ConfigurationError``.
    """
    try:
        factory = _ALGORITHMS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; registered: {sorted(_ALGORITHMS)}"
        ) from None
    try:
        return factory(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(
            f"algorithm {name!r} rejected arguments {sorted(kwargs)}: {exc}"
        ) from exc


def algorithm_names() -> list[str]:
    return sorted(_ALGORITHMS)


def register_dataset(name: str, factory: Callable) -> None:
    """Register a sequence factory under ``name``.

    The factory takes keyword arguments (``n_frames``, ``width``, ...).
    """
    if name in _DATASETS:
        raise ConfigurationError(f"dataset {name!r} already registered")
    _DATASETS[name] = factory


def create_dataset(name: str, **kwargs):
    """Instantiate a registered sequence."""
    try:
        return _DATASETS[name](**kwargs)
    except KeyError:
        raise ConfigurationError(
            f"unknown dataset {name!r}; registered: {sorted(_DATASETS)}"
        ) from None


def dataset_names() -> list[str]:
    return sorted(_DATASETS)


def register_defaults() -> None:
    """Register the built-in algorithms and dataset presets (idempotent)."""
    from ..baselines.odometry import ICPOdometry
    from ..baselines.sparse import SparseOdometry
    from ..baselines.static import StaticSLAM
    from ..datasets import corridor_seq, icl_nuim, tum
    from ..kfusion.pipeline import KinectFusion

    if "kfusion" not in _ALGORITHMS:
        _ALGORITHMS["kfusion"] = KinectFusion
        _ALGORITHMS["icp_odometry"] = ICPOdometry
        _ALGORITHMS["sparse_odometry"] = SparseOdometry
        _ALGORITHMS["static"] = StaticSLAM
    for name in icl_nuim.SEQUENCE_NAMES:
        if name not in _DATASETS:
            _DATASETS[name] = (
                lambda name=name, **kw: icl_nuim.load(name, **kw)
            )
    for name in tum.SEQUENCE_NAMES:
        if name not in _DATASETS:
            _DATASETS[name] = lambda name=name, **kw: tum.load(name, **kw)
    for name in corridor_seq.SEQUENCE_NAMES:
        if name not in _DATASETS:
            _DATASETS[name] = (
                lambda name=name, **kw: corridor_seq.load(name, **kw)
            )
