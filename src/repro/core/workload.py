"""Per-frame kernel workload records.

SLAMBench measures real kernel timings; our Python reproduction measures
real *functional* behaviour but gets runtime/power numbers from a platform
simulator (see DESIGN.md, substitutions).  The bridge is the workload
record: each SLAM system reports, for every processed frame, the list of
kernels it executed with their operation counts.  The simulator maps those
counts onto a device model to produce time and energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import SimulationError


@dataclass(frozen=True)
class KernelInvocation:
    """One kernel launch.

    Attributes:
        name: kernel identifier (e.g. ``"bilateral_filter"``).
        flops: floating-point operations executed.
        bytes_accessed: memory traffic in bytes (reads + writes).
        parallel_fraction: fraction of work that can run in parallel
            (Amdahl); dense image/volume kernels are ~0.99+.
        gpu_eligible: whether an OpenCL/CUDA backend may run this kernel on
            the GPU (true for all KinectFusion kernels, false for e.g.
            host-side pose solves).
    """

    name: str
    flops: float
    bytes_accessed: float
    parallel_fraction: float = 0.99
    gpu_eligible: bool = True

    def __post_init__(self):
        if self.flops < 0 or self.bytes_accessed < 0:
            raise SimulationError(
                f"kernel {self.name!r}: negative operation counts"
            )
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise SimulationError(
                f"kernel {self.name!r}: parallel_fraction outside [0, 1]"
            )


@dataclass
class FrameWorkload:
    """All kernels executed while processing one frame.

    ``wall_times_s`` optionally carries the *measured* wall-clock of the
    Python implementation per pipeline stage (preprocess/track/integrate/
    raycast) — the reproduction's own timing instrumentation, next to the
    analytic counts the simulator consumes.
    """

    frame_index: int
    kernels: list[KernelInvocation] = field(default_factory=list)
    wall_times_s: dict = field(default_factory=dict)

    def record_wall_time(self, stage: str, seconds: float) -> None:
        if seconds < 0:
            raise SimulationError("negative stage duration")
        self.wall_times_s[stage] = self.wall_times_s.get(stage, 0.0) + seconds

    def add(self, kernel: KernelInvocation) -> None:
        self.kernels.append(kernel)

    def extend(self, kernels: Iterable[KernelInvocation]) -> None:
        self.kernels.extend(kernels)

    @property
    def total_flops(self) -> float:
        return sum(k.flops for k in self.kernels)

    @property
    def total_bytes(self) -> float:
        return sum(k.bytes_accessed for k in self.kernels)

    def by_kernel(self) -> dict[str, float]:
        """Aggregate FLOPs per kernel name (for breakdown plots)."""
        agg: dict[str, float] = {}
        for k in self.kernels:
            agg[k.name] = agg.get(k.name, 0.0) + k.flops
        return agg
