"""Frame containers flowing from datasets into SLAM systems.

A :class:`Frame` bundles the synchronised sensor data for one timestamp:
the depth image (metres, 0 = invalid), an optional RGB image, and the
ground-truth camera-to-world pose when the dataset has one.  SLAM systems
must never read ``ground_truth_pose`` — it is reserved for the metric
layer; the harness enforces this by handing algorithms a stripped copy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..errors import DatasetError


@dataclass(frozen=True)
class Frame:
    """One synchronised RGB-D frame.

    Attributes:
        index: zero-based frame number within its sequence.
        timestamp: seconds since sequence start.
        depth: ``(H, W)`` float metres, 0 marks invalid pixels.
        rgb: optional ``(H, W, 3)`` float image in [0, 1].
        ground_truth_pose: optional 4x4 camera-to-world pose.
    """

    index: int
    timestamp: float
    depth: np.ndarray
    rgb: np.ndarray | None = None
    ground_truth_pose: np.ndarray | None = None

    def __post_init__(self):
        depth = np.asarray(self.depth, dtype=float)
        if depth.ndim != 2:
            raise DatasetError(f"depth must be 2-D, got shape {depth.shape}")
        object.__setattr__(self, "depth", depth)
        if self.rgb is not None:
            rgb = np.asarray(self.rgb, dtype=float)
            if rgb.shape != depth.shape + (3,):
                raise DatasetError(
                    f"rgb shape {rgb.shape} does not match depth {depth.shape}"
                )
            object.__setattr__(self, "rgb", rgb)
        if self.ground_truth_pose is not None:
            pose = np.asarray(self.ground_truth_pose, dtype=float)
            if pose.shape != (4, 4):
                raise DatasetError("ground_truth_pose must be 4x4")
            object.__setattr__(self, "ground_truth_pose", pose)

    @property
    def shape(self) -> tuple[int, int]:
        return self.depth.shape

    @property
    def has_ground_truth(self) -> bool:
        return self.ground_truth_pose is not None

    def without_ground_truth(self) -> "Frame":
        """Copy of this frame with the ground-truth pose removed.

        The harness feeds these to algorithms so no SLAM system can cheat.
        """
        if self.ground_truth_pose is None:
            return self
        return replace(self, ground_truth_pose=None)

    def valid_depth_fraction(self) -> float:
        """Fraction of pixels carrying a valid depth measurement."""
        return float(np.count_nonzero(self.depth > 0.0)) / self.depth.size
