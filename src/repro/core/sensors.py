"""Sensor descriptions, mirroring SLAMBench's sensor metadata.

A dataset advertises the sensors it carries (depth camera, RGB camera,
ground truth); a SLAM system checks at init time that the sensors it needs
are present.  This is the contract that lets SLAMBench plug arbitrary
algorithms into arbitrary datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DatasetError
from ..geometry import PinholeCamera


@dataclass(frozen=True)
class DepthSensor:
    """A depth camera: intrinsics plus range limits in metres."""

    camera: PinholeCamera
    min_range: float = 0.3
    max_range: float = 6.0

    def __post_init__(self):
        if not 0.0 <= self.min_range < self.max_range:
            raise DatasetError(
                f"invalid depth range [{self.min_range}, {self.max_range}]"
            )


@dataclass(frozen=True)
class RGBSensor:
    """A colour camera (assumed registered to the depth camera)."""

    camera: PinholeCamera


@dataclass(frozen=True)
class GroundTruthSensor:
    """Marker sensor: the dataset carries per-frame ground-truth poses."""

    frame_rate_hz: float = 30.0


@dataclass(frozen=True)
class SensorSuite:
    """The collection of sensors a dataset provides."""

    depth: DepthSensor
    rgb: RGBSensor | None = None
    ground_truth: GroundTruthSensor | None = None
    extras: dict = field(default_factory=dict)

    @property
    def has_rgb(self) -> bool:
        return self.rgb is not None

    @property
    def has_ground_truth(self) -> bool:
        return self.ground_truth is not None

    def require_depth(self) -> DepthSensor:
        """Return the depth sensor (always present by construction)."""
        return self.depth

    def require_ground_truth(self) -> GroundTruthSensor:
        if self.ground_truth is None:
            raise DatasetError("dataset has no ground-truth sensor")
        return self.ground_truth
