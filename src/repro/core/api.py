"""The SLAM system API — the paper's central abstraction.

SLAMBench's key contribution is a uniform lifecycle every SLAM system
implements, so performance/accuracy/power can be compared across
algorithms, implementations and datasets.  The C API is::

    sb_new_slam_configuration   -> declare parameters
    sb_init_slam_system         -> allocate state, check sensors
    sb_update_frame             -> push one frame of sensor data
    sb_process_once             -> run the algorithm for one step
    sb_update_outputs           -> publish pose / map / status
    sb_clean_slam_system        -> release state

:class:`SLAMSystem` mirrors that lifecycle method-for-method.  The harness
(`repro.core.harness`) drives it and is the only caller that needs to know
the order; systems just fill in the hooks.
"""

from __future__ import annotations

import abc

from ..errors import ConfigurationError
from .config import AlgorithmConfiguration, ParameterSpec
from .frame import Frame
from .outputs import OutputManager, TrackingStatus
from .sensors import SensorSuite
from .workload import FrameWorkload


class SLAMSystem(abc.ABC):
    """Abstract SLAM system implementing the SLAMBench lifecycle.

    Subclasses override the ``do_*`` hooks; the public methods enforce the
    lifecycle state machine (configure -> init -> per-frame loop -> clean)
    and raise :class:`~repro.errors.ConfigurationError` on misuse, exactly
    as the C++ loader aborts on out-of-order API calls.
    """

    name: str = "abstract"

    def __init__(self):
        self.configuration: AlgorithmConfiguration | None = None
        self.outputs = OutputManager()
        self._initialised = False
        self._pending_frame: Frame | None = None
        self._last_workload: FrameWorkload | None = None
        self._frames_processed = 0

    # -- lifecycle ---------------------------------------------------------
    def new_configuration(self) -> AlgorithmConfiguration:
        """``sb_new_slam_configuration``: build the default configuration."""
        self.configuration = AlgorithmConfiguration(self.parameter_specs())
        return self.configuration

    def init(self, sensors: SensorSuite) -> None:
        """``sb_init_slam_system``: validate sensors and allocate state."""
        if self.configuration is None:
            self.new_configuration()
        if self._initialised:
            raise ConfigurationError(f"{self.name}: init called twice")
        self.do_init(sensors)
        self._initialised = True
        self._frames_processed = 0

    def update_frame(self, frame: Frame) -> None:
        """``sb_update_frame``: stage one frame for processing."""
        self._require_init("update_frame")
        self._pending_frame = frame

    def process_once(self) -> TrackingStatus:
        """``sb_process_once``: consume the staged frame, run one step."""
        self._require_init("process_once")
        if self._pending_frame is None:
            raise ConfigurationError(
                f"{self.name}: process_once without update_frame"
            )
        frame = self._pending_frame
        self._pending_frame = None
        workload = FrameWorkload(frame_index=frame.index)
        status = self.do_process(frame, workload)
        self._last_workload = workload
        self._frames_processed += 1
        return status

    def update_outputs(self) -> OutputManager:
        """``sb_update_outputs``: refresh the published outputs."""
        self._require_init("update_outputs")
        self.do_update_outputs()
        return self.outputs

    def clean(self) -> None:
        """``sb_clean_slam_system``: release all state.

        After cleaning, the system can be initialised again from scratch
        (outputs are re-declared by ``do_init``).
        """
        if self._initialised:
            self.do_clean()
        self._initialised = False
        self._pending_frame = None
        self.outputs = OutputManager()

    # -- harness helpers ----------------------------------------------------
    @property
    def initialised(self) -> bool:
        return self._initialised

    @property
    def frames_processed(self) -> int:
        return self._frames_processed

    def last_workload(self) -> FrameWorkload:
        """Kernel workload of the most recently processed frame."""
        if self._last_workload is None:
            raise ConfigurationError(f"{self.name}: no frame processed yet")
        return self._last_workload

    def _require_init(self, what: str) -> None:
        if not self._initialised:
            raise ConfigurationError(f"{self.name}: {what} before init")

    # -- hooks for subclasses ------------------------------------------------
    @abc.abstractmethod
    def parameter_specs(self) -> list[ParameterSpec]:
        """Declare the algorithm's tunable parameters."""

    @abc.abstractmethod
    def do_init(self, sensors: SensorSuite) -> None:
        """Allocate internal state; raise DatasetError if sensors missing."""

    @abc.abstractmethod
    def do_process(self, frame: Frame, workload: FrameWorkload) -> TrackingStatus:
        """Process one frame; record executed kernels into ``workload``."""

    @abc.abstractmethod
    def do_update_outputs(self) -> None:
        """Publish current pose / map / status via ``self.outputs``."""

    def do_clean(self) -> None:
        """Release state (optional hook)."""
