"""Plain-text and CSV reporting of benchmark results.

SLAMBench prints aligned metric tables and writes logs the plotting
scripts consume; these helpers do the same for our results, and every
benchmark target uses them so the regenerated "figures" are reproducible
text artefacts.
"""

from __future__ import annotations

import io
from typing import Iterable, Mapping, Sequence

from ..errors import ReportError


def format_table(
    rows: Sequence[Mapping],
    columns: Sequence[str] | None = None,
    float_format: str = "{:.4g}",
    title: str | None = None,
) -> str:
    """Render a list of dict rows as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return "(no rows)\n"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    table = [[fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in table)) for i, c in enumerate(columns)
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    out.write(header + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for r in table:
        out.write("  ".join(cell.ljust(w) for cell, w in zip(r, widths)) + "\n")
    return out.getvalue()


def write_csv(rows: Sequence[Mapping], path: str,
              columns: Sequence[str] | None = None) -> None:
    """Write dict rows as CSV (simple, no quoting needs in our data).

    ``None`` values (missing measurements, e.g. ``sim_time_s`` without a
    simulated device) are written as empty cells rather than ``"None"``.
    """
    rows = list(rows)
    if not rows:
        raise ReportError("no rows to write")
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value) -> str:
        return "" if value is None else str(value)

    with open(path, "w") as f:
        f.write(",".join(columns) + "\n")
        for row in rows:
            f.write(",".join(cell(row.get(c)) for c in columns) + "\n")


def format_histogram(
    values: Iterable[float],
    n_bins: int = 14,
    lo: float | None = None,
    hi: float | None = None,
    width: int = 50,
    label: str = "",
) -> str:
    """ASCII histogram — the textual rendering of Figure 3's bar chart."""
    vals = sorted(float(v) for v in values)
    if not vals:
        return "(no values)\n"
    lo = lo if lo is not None else vals[0]
    hi = hi if hi is not None else vals[-1]
    if hi <= lo:
        hi = lo + 1.0
    counts = [0] * n_bins
    for v in vals:
        b = min(int((v - lo) / (hi - lo) * n_bins), n_bins - 1)
        counts[max(b, 0)] += 1
    peak = max(counts) or 1
    out = io.StringIO()
    if label:
        out.write(label + "\n")
    for i, c in enumerate(counts):
        left = lo + (hi - lo) * i / n_bins
        right = lo + (hi - lo) * (i + 1) / n_bins
        bar = "#" * int(round(c / peak * width))
        out.write(f"[{left:6.2f},{right:6.2f})  {bar} {c}\n")
    return out.getvalue()
