"""Typed, bounded algorithm parameters.

SLAMBench exposes each algorithm's tunables through a uniform parameter
mechanism (``sb_new_slam_configuration`` registers them; the command line
and HyperMapper set them).  :class:`ParameterSpec` describes one tunable —
its type, bounds and default — and :class:`AlgorithmConfiguration` is a
validated bag of values against a list of specs.  The HyperMapper design
space (``repro.hypermapper.space``) is built directly from these specs, so
an algorithm's declared parameters *are* its search space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ParameterSpec:
    """Description of one algorithm parameter.

    Attributes:
        name: identifier, unique within an algorithm.
        kind: one of ``"integer"``, ``"real"``, ``"ordinal"``,
            ``"categorical"``.
        default: default value (must itself validate).
        low, high: inclusive bounds for integer/real parameters.
        choices: allowed values for ordinal/categorical parameters
            (ordinals must be sorted numerics).
        log_scale: hint that a real parameter should be sampled in log
            space (e.g. ICP convergence threshold).
        description: one-line human description, shown in reports.
    """

    name: str
    kind: str
    default: Any
    low: float | None = None
    high: float | None = None
    choices: tuple = ()
    log_scale: bool = False
    description: str = ""

    _KINDS = ("integer", "real", "ordinal", "categorical")

    def __post_init__(self):
        if self.kind not in self._KINDS:
            raise ConfigurationError(
                f"parameter {self.name!r}: unknown kind {self.kind!r}"
            )
        if self.kind in ("integer", "real"):
            if self.low is None or self.high is None:
                raise ConfigurationError(
                    f"parameter {self.name!r}: integer/real need low and high"
                )
            if self.low > self.high:
                raise ConfigurationError(
                    f"parameter {self.name!r}: low > high"
                )
            if self.log_scale and self.low <= 0:
                raise ConfigurationError(
                    f"parameter {self.name!r}: log scale requires low > 0"
                )
        if self.kind in ("ordinal", "categorical"):
            if not self.choices:
                raise ConfigurationError(
                    f"parameter {self.name!r}: ordinal/categorical need choices"
                )
            object.__setattr__(self, "choices", tuple(self.choices))
            if self.kind == "ordinal":
                vals = list(self.choices)
                if sorted(vals) != vals:
                    raise ConfigurationError(
                        f"parameter {self.name!r}: ordinal choices must be sorted"
                    )
        self.validate(self.default)

    def validate(self, value: Any) -> Any:
        """Check ``value`` against this spec; return the canonical value."""
        if self.kind == "integer":
            if not float(value).is_integer():
                raise ConfigurationError(
                    f"parameter {self.name!r}: {value!r} is not an integer"
                )
            value = int(value)
            if not self.low <= value <= self.high:
                raise ConfigurationError(
                    f"parameter {self.name!r}: {value} outside "
                    f"[{self.low}, {self.high}]"
                )
            return value
        if self.kind == "real":
            value = float(value)
            if not self.low <= value <= self.high:
                raise ConfigurationError(
                    f"parameter {self.name!r}: {value} outside "
                    f"[{self.low}, {self.high}]"
                )
            return value
        # ordinal / categorical
        if value not in self.choices:
            raise ConfigurationError(
                f"parameter {self.name!r}: {value!r} not in {self.choices}"
            )
        return value


class AlgorithmConfiguration:
    """A validated mapping from parameter names to values.

    Construct from a list of :class:`ParameterSpec` plus optional overrides;
    unknown names and out-of-bounds values raise
    :class:`~repro.errors.ConfigurationError` eagerly.
    """

    def __init__(self, specs: Sequence[ParameterSpec],
                 values: Mapping[str, Any] | None = None):
        self._specs = {s.name: s for s in specs}
        if len(self._specs) != len(specs):
            raise ConfigurationError("duplicate parameter names in specs")
        self._values = {name: spec.default for name, spec in self._specs.items()}
        if values:
            self.update(values)

    @property
    def specs(self) -> tuple[ParameterSpec, ...]:
        return tuple(self._specs.values())

    def update(self, values: Mapping[str, Any]) -> "AlgorithmConfiguration":
        """Set several parameters, validating each. Returns self."""
        for name, value in values.items():
            self[name] = value
        return self

    def __getitem__(self, name: str) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise ConfigurationError(f"unknown parameter {name!r}") from None

    def __setitem__(self, name: str, value: Any) -> None:
        spec = self._specs.get(name)
        if spec is None:
            raise ConfigurationError(f"unknown parameter {name!r}")
        self._values[name] = spec.validate(value)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterable[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def as_dict(self) -> dict:
        """Plain ``{name: value}`` snapshot."""
        return dict(self._values)

    def copy(self) -> "AlgorithmConfiguration":
        clone = AlgorithmConfiguration(list(self._specs.values()))
        clone._values = dict(self._values)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AlgorithmConfiguration):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"AlgorithmConfiguration({inner})"
