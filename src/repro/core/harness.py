"""The benchmark harness — SLAMBench's loader loop.

``run_benchmark`` drives a :class:`~repro.core.api.SLAMSystem` through a
:class:`~repro.datasets.base.Sequence` with the canonical lifecycle,
collects per-frame metrics, evaluates trajectory accuracy against ground
truth, and (optionally) simulates the run on a device model to obtain
speed and power.  The result object carries everything the paper's
figures need: per-frame streams (Fig 1), scalar objectives for the DSE
(Fig 2), and device timings (Fig 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets.base import Sequence
from ..errors import DatasetError
from ..errors import ReproError as _ReproError
from ..metrics.ate import ATEResult, absolute_trajectory_error
from ..metrics.drift import DriftResult, trajectory_drift
from ..metrics.rpe import RPEResult, relative_pose_error
from ..platforms.device import DeviceModel
from ..platforms.simulator import (
    PerformanceSimulator,
    PlatformConfig,
    SimulationResult,
)
from ..scene.trajectory import Trajectory
from ..telemetry import RunManifest, Tracer, current_tracer, stage, use_tracer
from .api import SLAMSystem
from .metrics import FrameRecord, MetricsCollector


@dataclass
class BenchmarkResult:
    """Outcome of one (algorithm, configuration, sequence[, device]) run."""

    algorithm: str
    sequence: str
    configuration: dict
    collector: MetricsCollector
    ate: ATEResult | None = None
    rpe: RPEResult | None = None
    drift: DriftResult | None = None
    simulation: SimulationResult | None = None
    manifest: RunManifest | None = None

    @property
    def estimated(self) -> Trajectory:
        return self.collector.estimated_trajectory()

    @property
    def mean_wall_time_s(self) -> float:
        return float(self.collector.wall_times().mean())

    def frame_log_rows(self) -> list[dict]:
        """Per-frame log rows, SLAMBench ``benchmark.log`` style.

        One row per processed frame with the tracking status, wall-clock
        of the Python kernels, estimated position, and (when a device was
        simulated) the simulated frame time.  ``sim_time_s`` is ``None``
        when no device was simulated for the frame, so the column stays
        uniformly numeric-or-missing rather than mixing floats with
        strings.
        """
        sim_times = {}
        if self.simulation is not None:
            sim_times = {
                t.frame_index: t.duration_s
                for t in self.simulation.frame_timings
            }
        rows = []
        for record in self.collector.records:
            x, y, z = record.pose[:3, 3]
            rows.append(
                {
                    "frame": record.index,
                    "timestamp_s": record.timestamp,
                    "status": record.status.value,
                    "wall_time_s": record.wall_time_s,
                    "sim_time_s": sim_times.get(record.index),
                    "x": x,
                    "y": y,
                    "z": z,
                    "valid_depth": record.valid_depth_fraction,
                    "kernel_gflops": record.workload.total_flops / 1e9,
                }
            )
        return rows

    def save_frame_log(self, path: str) -> None:
        """Write :meth:`frame_log_rows` as CSV."""
        from .report import write_csv

        write_csv(self.frame_log_rows(), path)

    def summary(self) -> dict:
        """Flat dict of the headline numbers (for reports and CSV)."""
        out = {
            "algorithm": self.algorithm,
            "sequence": self.sequence,
            "frames": len(self.collector),
            "tracked_fraction": self.collector.tracked_fraction(),
        }
        if self.ate is not None:
            out["ate_max_m"] = self.ate.max
            out["ate_mean_m"] = self.ate.mean
            out["ate_rmse_m"] = self.ate.rmse
        if self.rpe is not None:
            out["rpe_trans_rmse_m"] = self.rpe.trans_rmse
            out["rpe_rot_rmse_rad"] = self.rpe.rot_rmse
        if self.drift is not None:
            out["drift_percent"] = self.drift.endpoint_drift_percent
        if self.simulation is not None:
            out["sim_fps"] = self.simulation.fps
            out["sim_frame_time_s"] = self.simulation.mean_frame_time_s
            out["sim_power_w"] = self.simulation.average_power_w
            out["sim_streaming_power_w"] = (
                self.simulation.streaming_average_power_w()
            )
            out["sim_energy_per_frame_j"] = self.simulation.energy_per_frame_j
        return out


def _capture_manifest(system: SLAMSystem, sequence: Sequence,
                      config: dict) -> RunManifest:
    return RunManifest.capture(
        algorithm=system.name,
        dataset=sequence.name,
        configuration=config,
        seed=getattr(sequence, "seed", None),
        frames=len(sequence),
    )


def run_benchmark(
    system: SLAMSystem,
    sequence: Sequence,
    configuration: dict | None = None,
    device: DeviceModel | None = None,
    platform_config: PlatformConfig | None = None,
    evaluate_accuracy: bool = True,
    rpe_delta: int = 1,
    tracer: Tracer | None = None,
) -> BenchmarkResult:
    """Run a SLAM system over a sequence and evaluate it.

    Args:
        system: a fresh (un-initialised) SLAM system instance.
        sequence: the dataset sequence to process.
        configuration: parameter overrides applied before init.
        device: simulate the recorded workloads on this device model.
        platform_config: backend/DVFS choice for the simulation.
        evaluate_accuracy: compute ATE/RPE against ground truth (requires
            the sequence to carry ground-truth poses).
        rpe_delta: frame interval for the RPE.
        tracer: telemetry sink for per-frame/per-kernel spans.  Defaults
            to whatever :func:`repro.telemetry.use_tracer` installed in
            the calling context (a disabled no-op tracer otherwise); pass
            one explicitly to trace just this run.

    Returns:
        A :class:`BenchmarkResult`; accuracy/simulation fields are ``None``
        when not requested.  ``result.manifest`` records the provenance
        (configuration, dataset, git SHA, platform, seed) of the run.
    """
    if len(sequence) == 0:
        raise DatasetError(f"sequence {sequence.name} is empty")
    tracer = tracer if tracer is not None else current_tracer()

    config = system.new_configuration()
    if configuration:
        config.update(configuration)
    manifest = _capture_manifest(system, sequence, config.as_dict())
    if tracer.enabled and tracer.manifest is None:
        tracer.manifest = manifest

    collector = MetricsCollector()
    with use_tracer(tracer):
        with tracer.span("init", algorithm=system.name):
            system.init(sequence.sensors)
        try:
            for frame in sequence:
                # One pair of clock reads feeds both the "frame" span and
                # the FrameRecord wall time (RPR001: telemetry owns the
                # clock).
                with stage(None, "frame", frame=frame.index) as timed:
                    system.update_frame(frame.without_ground_truth())
                    status = system.process_once()
                    system.update_outputs()
                collector.add(
                    FrameRecord(
                        index=frame.index,
                        timestamp=frame.timestamp,
                        wall_time_s=timed.duration_s,
                        status=status,
                        pose=system.outputs.pose(),
                        workload=system.last_workload(),
                        valid_depth_fraction=frame.valid_depth_fraction(),
                    )
                )
        finally:
            system.clean()

    result = BenchmarkResult(
        algorithm=system.name,
        sequence=sequence.name,
        configuration=config.as_dict(),
        collector=collector,
        manifest=manifest,
    )

    if evaluate_accuracy and sequence.sensors.has_ground_truth:
        with tracer.span("evaluate_accuracy"):
            estimated = collector.estimated_trajectory().relative(0)
            reference = sequence.ground_truth().relative(0)
            result.ate = absolute_trajectory_error(estimated, reference)
            if len(estimated) > rpe_delta:
                result.rpe = relative_pose_error(estimated, reference,
                                                 delta=rpe_delta)
            try:
                result.drift = trajectory_drift(estimated, reference)
            except _ReproError:
                result.drift = None  # e.g. stationary sequence: no path

    if device is not None:
        with use_tracer(tracer):
            simulator = PerformanceSimulator(device, platform_config)
            result.simulation = simulator.simulate(collector.workloads())

    return result


def run_frame_stream(
    system: SLAMSystem,
    sequence: Sequence,
    configuration: dict | None = None,
    tracer: Tracer | None = None,
):
    """Generator variant of the harness for live/GUI-style consumption.

    Yields :class:`FrameRecord` objects one at a time — what the SLAMBench
    GUI renders in real time (Figure 1).  The caller owns cleanup via the
    generator protocol.  Like :func:`run_benchmark`, an empty sequence
    raises :class:`~repro.errors.DatasetError` (at the first ``next()``,
    per the generator protocol).
    """
    if len(sequence) == 0:
        raise DatasetError(f"sequence {sequence.name} is empty")
    tracer = tracer if tracer is not None else current_tracer()

    config = system.new_configuration()
    if configuration:
        config.update(configuration)
    if tracer.enabled and tracer.manifest is None:
        tracer.manifest = _capture_manifest(system, sequence,
                                            config.as_dict())
    system.init(sequence.sensors)
    try:
        for frame in sequence:
            with use_tracer(tracer), \
                    stage(None, "frame", frame=frame.index) as timed:
                system.update_frame(frame.without_ground_truth())
                status = system.process_once()
                system.update_outputs()
            yield FrameRecord(
                index=frame.index,
                timestamp=frame.timestamp,
                wall_time_s=timed.duration_s,
                status=status,
                pose=system.outputs.pose(),
                workload=system.last_workload(),
                valid_depth_fraction=frame.valid_depth_fraction(),
            )
    finally:
        system.clean()
