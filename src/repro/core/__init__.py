"""SLAMBench-style framework core: API, configuration, harness, metrics."""

from .api import SLAMSystem
from .compare import MatrixEntry, MatrixResult, run_matrix
from .config import AlgorithmConfiguration, ParameterSpec
from .frame import Frame
from .harness import BenchmarkResult, run_benchmark, run_frame_stream
from .metrics import FrameRecord, MetricsCollector
from .outputs import Output, OutputKind, OutputManager, TrackingStatus
from .registry import (
    algorithm_names,
    create_algorithm,
    create_dataset,
    dataset_names,
    register_algorithm,
    register_dataset,
    register_defaults,
)
from .report import format_histogram, format_table, write_csv
from .sensors import DepthSensor, GroundTruthSensor, RGBSensor, SensorSuite
from .workload import FrameWorkload, KernelInvocation

__all__ = [
    "SLAMSystem",
    "MatrixEntry",
    "MatrixResult",
    "run_matrix",
    "BenchmarkResult",
    "run_benchmark",
    "run_frame_stream",
    "FrameRecord",
    "MetricsCollector",
    "algorithm_names",
    "create_algorithm",
    "create_dataset",
    "dataset_names",
    "register_algorithm",
    "register_dataset",
    "register_defaults",
    "format_histogram",
    "format_table",
    "write_csv",
    "AlgorithmConfiguration",
    "ParameterSpec",
    "Frame",
    "Output",
    "OutputKind",
    "OutputManager",
    "TrackingStatus",
    "DepthSensor",
    "GroundTruthSensor",
    "RGBSensor",
    "SensorSuite",
    "FrameWorkload",
    "KernelInvocation",
]
