"""Per-frame metric collection — SLAMBench's metric manager.

While the harness drives a SLAM system over a sequence it records, per
frame: the wall-clock processing duration of our Python kernels, the
tracking status, the estimated pose, and the kernel workload (which the
platform simulator later converts into simulated device time and power).
The GUI of Figure 1 displays exactly this stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..scene.trajectory import Trajectory
from .outputs import TrackingStatus
from .workload import FrameWorkload


@dataclass(frozen=True)
class FrameRecord:
    """Everything measured about one processed frame."""

    index: int
    timestamp: float
    wall_time_s: float
    status: TrackingStatus
    pose: np.ndarray
    workload: FrameWorkload
    valid_depth_fraction: float


class MetricsCollector:
    """Accumulates frame records and derives summary statistics."""

    def __init__(self):
        self._records: list[FrameRecord] = []

    def add(self, record: FrameRecord) -> None:
        self._records.append(record)

    @property
    def records(self) -> tuple[FrameRecord, ...]:
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def require_nonempty(self) -> None:
        if not self._records:
            raise DatasetError("no frames recorded")

    def estimated_trajectory(self) -> Trajectory:
        """Estimated poses as a trajectory (volume/world frame of the SLAM)."""
        self.require_nonempty()
        return Trajectory(
            poses=np.stack([r.pose for r in self._records]),
            timestamps=np.array([r.timestamp for r in self._records]),
        )

    def workloads(self) -> list[FrameWorkload]:
        return [r.workload for r in self._records]

    def wall_times(self) -> np.ndarray:
        return np.array([r.wall_time_s for r in self._records])

    def tracked_fraction(self) -> float:
        """Fraction of frames with OK (or bootstrap/skipped-by-design) status."""
        self.require_nonempty()
        good = sum(
            1
            for r in self._records
            if r.status
            in (TrackingStatus.OK, TrackingStatus.BOOTSTRAP, TrackingStatus.SKIPPED)
        )
        return good / len(self._records)

    def lost_frames(self) -> list[int]:
        return [
            r.index for r in self._records if r.status == TrackingStatus.LOST
        ]

    def status_counts(self) -> dict:
        counts: dict[str, int] = {}
        for r in self._records:
            counts[r.status.value] = counts.get(r.status.value, 0) + 1
        return counts
