"""Typed algorithm outputs, mirroring SLAMBench's output mechanism.

SLAMBench systems publish named outputs (current pose, point cloud, render
of the internal model, tracking status); the loader/GUI subscribes to them.
:class:`OutputManager` is the registry a :class:`~repro.core.api.SLAMSystem`
fills in during ``update_outputs``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import ConfigurationError


class OutputKind(enum.Enum):
    """The type tag of a published output."""

    POSE = "pose"  # 4x4 camera-to-world estimate
    POINTCLOUD = "pointcloud"  # (N, 3) world points
    FRAME = "frame"  # (H, W) or (H, W, 3) image
    TRACKING_STATUS = "tracking_status"  # TrackingStatus enum
    SCALAR = "scalar"  # any float (e.g. internal residual)


class TrackingStatus(enum.Enum):
    """Per-frame tracker verdict, as displayed in the SLAMBench GUI."""

    OK = "ok"
    LOST = "lost"
    SKIPPED = "skipped"  # frame not tracked (tracking_rate decimation)
    BOOTSTRAP = "bootstrap"  # first frame / re-initialisation


@dataclass
class Output:
    """One published output slot."""

    name: str
    kind: OutputKind
    value: Any = None
    updated_at_frame: int = -1

    def set(self, value: Any, frame_index: int) -> None:
        self.value = value
        self.updated_at_frame = frame_index


class OutputManager:
    """Registry of the outputs a SLAM system publishes.

    Systems declare outputs once at init; the harness reads them after each
    processed frame.  Declaring twice or reading an undeclared output is an
    error — the same strictness the C++ framework enforces.
    """

    def __init__(self):
        self._outputs: dict[str, Output] = {}

    def declare(self, name: str, kind: OutputKind) -> Output:
        if name in self._outputs:
            raise ConfigurationError(f"output {name!r} already declared")
        out = Output(name=name, kind=kind)
        self._outputs[name] = out
        return out

    def get(self, name: str) -> Output:
        try:
            return self._outputs[name]
        except KeyError:
            raise ConfigurationError(f"output {name!r} not declared") from None

    def __contains__(self, name: str) -> bool:
        return name in self._outputs

    def names(self) -> list[str]:
        return list(self._outputs)

    def set_pose(self, pose: np.ndarray, frame_index: int,
                 name: str = "pose") -> None:
        """Convenience: update (declaring if needed) the pose output."""
        if name not in self._outputs:
            self.declare(name, OutputKind.POSE)
        self._outputs[name].set(np.asarray(pose, dtype=float), frame_index)

    def pose(self, name: str = "pose") -> np.ndarray:
        """Latest pose estimate."""
        value = self.get(name).value
        if value is None:
            raise ConfigurationError(f"output {name!r} has no value yet")
        return value
