"""Comparison matrices: algorithms x configurations x sequences.

SLAMBench's purpose is the *holistic comparison* the poster's abstract
promises.  :func:`run_matrix` is that as a library call: every entry
(a named system factory with a configuration) runs over every sequence,
optionally simulated on a device, and the result renders as the familiar
cross table plus per-cell details.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence as SequenceT

from ..datasets.base import Sequence
from ..errors import ConfigurationError, ReproError
from ..platforms.device import DeviceModel
from ..platforms.simulator import PlatformConfig
from .harness import BenchmarkResult, run_benchmark
from .report import format_table


@dataclass(frozen=True)
class MatrixEntry:
    """One row of the comparison: a system recipe."""

    name: str
    factory: Callable[[], object]  # () -> SLAMSystem
    configuration: dict


@dataclass
class MatrixResult:
    """All benchmark results of a comparison matrix."""

    results: dict  # (entry_name, sequence_name) -> BenchmarkResult | None
    entry_names: list
    sequence_names: list
    errors: dict  # (entry_name, sequence_name) -> str

    def get(self, entry: str, sequence: str) -> BenchmarkResult:
        result = self.results.get((entry, sequence))
        if result is None:
            raise ConfigurationError(
                f"no result for ({entry!r}, {sequence!r}): "
                f"{self.errors.get((entry, sequence), 'not run')}"
            )
        return result

    def cell_rows(self) -> list[dict]:
        """One flat row per (entry, sequence) cell."""
        rows = []
        for entry in self.entry_names:
            for sequence in self.sequence_names:
                result = self.results.get((entry, sequence))
                if result is None:
                    rows.append({"entry": entry, "sequence": sequence,
                                 "error": self.errors.get(
                                     (entry, sequence), "?")})
                    continue
                row = {"entry": entry}
                row.update(result.summary())
                rows.append(row)
        return rows

    def table(self, metric: str = "ate_max_m",
              float_format: str = "{:.4g}") -> str:
        """Entries x sequences cross table of one summary metric."""
        rows = []
        for entry in self.entry_names:
            row = {"entry": entry}
            for sequence in self.sequence_names:
                result = self.results.get((entry, sequence))
                if result is None:
                    row[sequence] = "ERR"
                else:
                    value = result.summary().get(metric)
                    row[sequence] = (float_format.format(value)
                                     if isinstance(value, float) else value)
            rows.append(row)
        return format_table(rows, title=f"{metric} per entry x sequence")


def _run_matrix_cell(payload):
    """One (entry, sequence) cell, pool-shippable by name.

    ``shared`` is the batch-constant ``(device, platform_config)`` pair;
    the entry and sequence travel with the job.
    """
    from ..jobs.pool import worker_shared

    entry, sequence = payload
    device, platform_config = worker_shared()
    return run_benchmark(
        entry.factory(),
        sequence,
        configuration=dict(entry.configuration),
        device=device,
        platform_config=platform_config,
    )


def run_matrix(
    entries: SequenceT[MatrixEntry],
    sequences: SequenceT[Sequence],
    device: DeviceModel | None = None,
    platform_config: PlatformConfig | None = None,
    fail_fast: bool = False,
    workers: int = 1,
) -> MatrixResult:
    """Run every entry over every sequence.

    Library errors in one cell are recorded (not raised) unless
    ``fail_fast`` — a comparison suite should report the algorithm that
    crashed on a dataset, not die with it.

    ``workers > 1`` fans the cells (SLAMBench2's algorithm × dataset ×
    device batch) out over a :class:`repro.jobs.WorkerPool`; entry
    factories must then be picklable (module-level classes or
    functions, not lambdas).
    """
    if not entries:
        raise ConfigurationError("no matrix entries")
    if not sequences:
        raise ConfigurationError("no sequences")
    names = [e.name for e in entries]
    if len(set(names)) != len(names):
        raise ConfigurationError("duplicate entry names")

    cells = [(entry, sequence)
             for entry in entries for sequence in sequences]
    keys = [(entry.name, sequence.name) for entry, sequence in cells]

    results: dict = {}
    errors: dict = {}
    if workers > 1:
        from ..jobs import WorkerPool

        with WorkerPool(workers=workers) as pool:
            outcomes = pool.run(_run_matrix_cell, cells,
                                shared=(device, platform_config))
        for key, outcome in zip(keys, outcomes):
            if outcome.ok:
                results[key] = outcome.value
            else:
                if fail_fast:
                    raise ReproError(
                        f"matrix cell {key} failed: {outcome.error}"
                    )
                results[key] = None
                errors[key] = outcome.error
    else:
        for (entry, sequence), key in zip(cells, keys):
            try:
                results[key] = run_benchmark(
                    entry.factory(),
                    sequence,
                    configuration=dict(entry.configuration),
                    device=device,
                    platform_config=platform_config,
                )
            except ReproError as exc:
                if fail_fast:
                    raise
                results[key] = None
                errors[key] = str(exc)
    return MatrixResult(
        results=results,
        entry_names=names,
        sequence_names=[s.name for s in sequences],
        errors=errors,
    )
