"""Whole-program effect inference over the call graph.

Every function in the :class:`~repro.analysis.callgraph.CallGraph` gets
an **effect set** drawn from a small fixed vocabulary:

``time``
    reads a wall/process clock (the RPR001 ``BANNED_CLOCKS`` patterns).
``rng``
    draws from a global random stream (RPR002 patterns plus the stdlib
    ``random`` module).
``io``
    touches files or streams (``open``/``print``/``input``, numpy and
    json (de)serialisation, ``os``/``shutil``/``pathlib`` file ops).
``process``
    spawns or manages processes (RPR006 modules, ``subprocess``,
    ``os.system``/``os.fork``/...).
``global-write``
    rebinding or mutating module-level state (``global`` declarations,
    stores into module-level names, mutating calls on them).
``alloc``
    fresh-array numpy constructors (``np.zeros``/``empty``/...) — the
    thing the :mod:`repro.perf` workspace arena exists to hoist out of
    per-frame hot paths.
``raises(T)``
    may raise exception type ``T`` (resolvable ``raise`` statements).

Effects are **seeded** from intrinsic AST patterns (the same pattern
tables the per-file rules RPR001/2/6 use, so the two views cannot
drift), then **propagated** caller <- callee to a deterministic
fixpoint.  Three owner packages *absorb* the effect they exist to
encapsulate — ``repro.telemetry`` absorbs ``time``, ``repro.jobs``
absorbs ``process``, the workspace arena absorbs ``alloc`` — so a
kernel that times itself *through telemetry* is clean while one calling
``time.time()`` directly is not.

For every propagated effect the engine keeps one ``via`` pointer per
(function, effect), forming acyclic chains back to a concrete seed
site; :func:`effect_chain` reconstructs the ``a -> b -> c`` path that
RPR009/RPR010 findings print.

A seed line may carry ``# effect-ok: <reason>`` to waive the intrinsic
effect at source with a documented justification (mirroring the
``# f64-ok:`` convention of RPR007).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ReproError
from .callgraph import CallGraph, FunctionNode, iter_own_nodes
from .checkers import BANNED_CLOCKS, BANNED_NP_RANDOM, BANNED_PROCESS_MODULES

#: Inline waiver marker: suppresses the intrinsic seed on its line.
EFFECT_WAIVER = "# effect-ok:"

#: Effect vocabulary (``raises(T)`` is open-ended over T).
EFFECTS = ("time", "rng", "io", "process", "global-write", "alloc")

#: numpy constructors that materialise fresh arrays.
ALLOC_NP_CALLS = frozenset({
    "zeros", "ones", "empty", "full",
    "zeros_like", "ones_like", "empty_like", "full_like",
    "meshgrid", "tile", "repeat", "concatenate", "stack",
    "vstack", "hstack", "dstack", "column_stack",
})

#: stdlib global-stream RNG calls (module ``random``).
RNG_STDLIB_CALLS = frozenset({
    "random", "randint", "randrange", "uniform", "gauss", "normalvariate",
    "choice", "choices", "sample", "shuffle", "seed", "betavariate",
    "expovariate", "triangular",
})

#: io: exact dotted call targets.
IO_CALLS = frozenset({
    "open", "print", "input",
    "numpy.save", "numpy.savez", "numpy.savez_compressed", "numpy.load",
    "numpy.savetxt", "numpy.loadtxt", "numpy.fromfile", "numpy.genfromtxt",
    "json.dump", "json.load",
    "os.remove", "os.unlink", "os.rename", "os.replace", "os.makedirs",
    "os.mkdir", "os.rmdir", "os.listdir", "os.scandir", "os.stat",
    "shutil.copy", "shutil.copy2", "shutil.copyfile", "shutil.copytree",
    "shutil.rmtree", "shutil.move",
    "tempfile.mkdtemp", "tempfile.mkstemp",
    "sys.stdout.write", "sys.stderr.write",
})

#: io: method names on arbitrary objects (Path / file-handle heuristic).
IO_METHOD_NAMES = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
    "mkdir", "rmdir", "unlink", "touch", "glob", "rglob", "iterdir",
    "readline", "readlines", "writelines", "flush", "to_csv", "tofile",
})

#: process: exact dotted call targets outside the RPR006 module ban.
PROCESS_CALLS = frozenset({
    "subprocess.run", "subprocess.Popen", "subprocess.call",
    "subprocess.check_call", "subprocess.check_output",
    "os.system", "os.popen", "os.fork", "os.spawnv", "os.spawnl",
    "os.execv", "os.execve", "os.kill", "os.waitpid",
})

#: method names that mutate their receiver in place.
MUTATING_METHOD_NAMES = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "update",
    "add", "discard", "setdefault", "sort", "popitem", "fill", "sorted",
})

#: Effect -> packages allowed to *absorb* it (propagation stops there).
DEFAULT_ABSORB: dict[str, tuple[str, ...]] = {
    "time": ("repro.telemetry",),
    "process": ("repro.jobs",),
    "alloc": ("repro.perf.workspace",),
}

#: Committed effect-snapshot file (``repro arch snapshot`` / ``diff``).
DEFAULT_SNAPSHOT = "ARCH_EFFECTS.json"
SNAPSHOT_VERSION = 1

_RAISES_RE = re.compile(r"^raises\((?P<t>[A-Za-z_][A-Za-z0-9_.]*)\)$")


@dataclass(frozen=True)
class Seed:
    """One intrinsic effect occurrence: the concrete AST pattern site."""

    effect: str
    call: str  #: textual pattern that matched (e.g. ``time.perf_counter``)
    path: str
    lineno: int


@dataclass
class EffectInfo:
    """Inferred effects for one function."""

    qname: str
    effects: set[str] = field(default_factory=set)
    #: effect -> intrinsic seeds in this very function
    seeds: dict[str, list[Seed]] = field(default_factory=dict)
    #: effect -> direct callee the effect arrived through (propagated)
    via: dict[str, str] = field(default_factory=dict)


class EffectAnalysis:
    """Seeded + propagated effect sets for a whole call graph."""

    def __init__(self, graph: CallGraph,
                 absorb: dict[str, tuple[str, ...]] | None = None):
        self.graph = graph
        self.absorb = dict(DEFAULT_ABSORB if absorb is None else absorb)
        self.info: dict[str, EffectInfo] = {
            q: EffectInfo(q) for q in graph.functions
        }
        self._seed_all()
        self._propagate()

    # -- seeding -------------------------------------------------------------
    def _seed_all(self) -> None:
        for qname, node in self.graph.functions.items():
            lines = self.graph.sources.get(node.path, [])
            self._seed_function(qname, node, lines)

    def _waived(self, lines: list[str], lineno: int) -> bool:
        """Waived if the seed line (or a comment line right above it)
        carries ``# effect-ok: <reason>``."""
        if not 1 <= lineno <= len(lines):
            return False
        if EFFECT_WAIVER in lines[lineno - 1]:
            return True
        prev = lines[lineno - 2].strip() if lineno >= 2 else ""
        return prev.startswith("#") and EFFECT_WAIVER in prev

    def _seed_function(self, qname: str, node: FunctionNode,
                       lines: list[str]) -> None:
        info = self.info[qname]

        def seed(effect: str, call: str, lineno: int) -> None:
            if self._waived(lines, lineno):
                return
            info.effects.add(effect)
            info.seeds.setdefault(effect, []).append(
                Seed(effect, call, node.path, lineno))

        # pattern-matched effects on external (stdlib/third-party) calls
        for site in node.external:
            target = site.target
            head, _, attr = target.rpartition(".")
            if target in BANNED_CLOCKS:
                seed("time", target, site.lineno)
            elif head == "numpy.random" and attr in BANNED_NP_RANDOM:
                seed("rng", target, site.lineno)
            elif head == "random" and attr in RNG_STDLIB_CALLS:
                seed("rng", target, site.lineno)
            elif target in IO_CALLS:
                seed("io", target, site.lineno)
            elif target in PROCESS_CALLS or any(
                    target == m or target.startswith(m + ".")
                    for m in BANNED_PROCESS_MODULES):
                seed("process", target, site.lineno)
            elif head in ("numpy", "np") and attr in ALLOC_NP_CALLS:
                seed("alloc", target, site.lineno)
            elif attr in IO_METHOD_NAMES:
                seed("io", target, site.lineno)

        # io/mutation heuristics also apply to *unresolved* method calls
        # (receiver is a parameter or dynamic) — better a coarse seed
        # than a silent miss.
        for site in node.unresolved:
            attr = site.target.rpartition(".")[2]
            if attr in IO_METHOD_NAMES:
                seed("io", site.target, site.lineno)

        # syntactic effects need the AST of this function
        func_ast = node.ast_node
        if func_ast is None:
            return
        module_names = self._module_level_names(node.module)
        for stmt in iter_own_nodes(func_ast):
            if isinstance(stmt, ast.Global):
                seed("global-write", f"global {', '.join(stmt.names)}",
                     stmt.lineno)
            elif isinstance(stmt, ast.Raise):
                t = _raised_type(stmt)
                if t is not None:
                    seed(f"raises({t})", t, stmt.lineno)
            elif isinstance(stmt, (ast.Assign, ast.AugAssign)):
                for tgt in _store_roots(stmt):
                    if tgt in module_names:
                        seed("global-write", tgt, stmt.lineno)
            elif isinstance(stmt, ast.Call):
                dotted = _call_text(stmt)
                if dotted is None:
                    continue
                root, _, rest = dotted.partition(".")
                if (root in module_names and rest
                        and rest.rpartition(".")[2]
                        in MUTATING_METHOD_NAMES):
                    seed("global-write", dotted, stmt.lineno)

    def _module_level_names(self, module: str) -> frozenset[str]:
        cache = getattr(self, "_modnames_cache", None)
        if cache is None:
            cache = self._modnames_cache = {}
        names = cache.get(module)
        if names is None:
            found: set[str] = set()
            body_node = self.graph.functions.get(f"{module}.<module>")
            tree = body_node.ast_node if body_node is not None else None
            if tree is not None:
                for stmt in getattr(tree, "body", ()):
                    if isinstance(stmt, (ast.Assign, ast.AugAssign,
                                         ast.AnnAssign)):
                        # module-level stores: collect the root names
                        # (``x = ...`` counts here, unlike in functions)
                        for tgt in _assign_targets(stmt):
                            node = tgt
                            while isinstance(node, (ast.Subscript,
                                                    ast.Attribute)):
                                node = node.value
                            if isinstance(node, ast.Name):
                                found.add(node.id)
            names = cache[module] = frozenset(found)
        return names

    # -- propagation ---------------------------------------------------------
    def _absorbs(self, module: str, effect: str) -> bool:
        owners = self.absorb.get(effect, ())
        return any(module == o or module.startswith(o + ".")
                   for o in owners)

    def _propagate(self) -> None:
        callers = self.graph.callers_of()
        # round-based worklist in deterministic (sorted) order
        pending = sorted(self.info)
        while pending:
            next_set: set[str] = set()
            for qname in pending:
                effects = self.info[qname].effects
                if not effects:
                    continue
                module = self.graph.functions[qname].module
                for caller in sorted(callers.get(qname, ())):
                    cinfo = self.info[caller]
                    for effect in sorted(effects):
                        base = effect.split("(")[0] \
                            if effect.startswith("raises(") else effect
                        if base != "raises" and self._absorbs(module, base):
                            continue  # the owner package keeps its effect
                        if effect in cinfo.effects:
                            continue
                        cinfo.effects.add(effect)
                        cinfo.via[effect] = qname
                        next_set.add(caller)
            pending = sorted(next_set)

    # -- queries -------------------------------------------------------------
    def effect_chain(self, qname: str, effect: str) -> list[str]:
        """Call chain ``[qname, ..., seeder]`` for a (propagated) effect."""
        chain = [qname]
        seen = {qname}
        while True:
            info = self.info.get(chain[-1])
            if info is None or effect in info.seeds:
                return chain
            nxt = info.via.get(effect)
            if nxt is None or nxt in seen:
                return chain
            seen.add(nxt)
            chain.append(nxt)

    def seed_of(self, qname: str, effect: str) -> Seed | None:
        """The concrete seed a (propagated) effect traces back to."""
        tail = self.effect_chain(qname, effect)[-1]
        seeds = self.info[tail].seeds.get(effect)
        return seeds[0] if seeds else None

    def effect_sets(self) -> dict[str, list[str]]:
        """``qname -> sorted effects`` for every function with any."""
        return {
            q: sorted(info.effects)
            for q, info in sorted(self.info.items())
            if info.effects
        }


def _raised_type(stmt: ast.Raise) -> str | None:
    exc = stmt.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    parts = []
    while isinstance(exc, ast.Attribute):
        parts.append(exc.attr)
        exc = exc.value
    if isinstance(exc, ast.Name):
        parts.append(exc.id)
        return ".".join(reversed(parts)).rpartition(".")[2]
    return None


def _assign_targets(stmt: ast.AST) -> list[ast.AST]:
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets)
    if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        return [stmt.target]
    return []


def _store_roots(stmt: ast.AST) -> list[str]:
    """Root names *mutated* by an assignment inside a function body.

    A bare ``x = ...`` in a function is a local rebind, not a module
    write; only subscript/attribute stores (and augmented assignment)
    reach through the name to shared state.
    """
    roots = []
    for tgt in _assign_targets(stmt):
        node = tgt
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        if isinstance(node, ast.Name):
            if node is not tgt or isinstance(stmt, ast.AugAssign):
                roots.append(node.id)
    return roots


def _call_text(call: ast.Call) -> str | None:
    node = call.func
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


# -- snapshot ---------------------------------------------------------------
def snapshot_payload(analysis: EffectAnalysis) -> dict:
    """JSON-stable snapshot of every function's effect set."""
    return {
        "version": SNAPSHOT_VERSION,
        "root": analysis.graph.root_package,
        "functions": analysis.effect_sets(),
    }


def write_snapshot(analysis: EffectAnalysis, path: str) -> None:
    Path(path).write_text(
        json.dumps(snapshot_payload(analysis), indent=2, sort_keys=True)
        + "\n", encoding="utf-8")


def load_snapshot(path: str) -> dict:
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ReproError(f"cannot read effect snapshot {path}: {exc}") \
            from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"malformed effect snapshot {path}: {exc}") from exc
    if payload.get("version") != SNAPSHOT_VERSION:
        raise ReproError(
            f"effect snapshot {path} has version "
            f"{payload.get('version')!r}; expected {SNAPSHOT_VERSION}")
    return payload


def diff_snapshots(old: dict, new: dict) -> tuple[list[str], list[str]]:
    """``(new_effects, removed_effects)`` as human-readable lines.

    *New* effects (a function gained an effect, or a new function has
    effects) are review-blocking; removals are informational.
    """
    old_fns = old.get("functions", {})
    new_fns = new.get("functions", {})
    added, removed = [], []
    for qname in sorted(set(old_fns) | set(new_fns)):
        before = set(old_fns.get(qname, ()))
        after = set(new_fns.get(qname, ()))
        for eff in sorted(after - before):
            added.append(f"{qname}: +{eff}")
        for eff in sorted(before - after):
            removed.append(f"{qname}: -{eff}")
    return added, removed
