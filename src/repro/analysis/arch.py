"""The ``repro arch`` subcommand: inspect and enforce the architecture.

Thin, testable functions over :mod:`repro.analysis.policy` /
:mod:`~repro.analysis.callgraph` / :mod:`~repro.analysis.effects`:

* :func:`arch_show` — the layer diagram (top-down) with effect budgets;
* :func:`arch_check` — run RPR008/9/10 only, with the lint exit-code
  contract (0 clean / 1 findings / 2 internal error);
* :func:`arch_graph` — export the call graph as JSON or Graphviz DOT,
  at module (default) or function granularity;
* :func:`arch_effects` — print inferred per-function effect sets;
* :func:`arch_snapshot` — write the committed ``ARCH_EFFECTS.json``;
* :func:`arch_diff` — compare current effects against the snapshot;
  **new** effects fail (exit 1) so they must be reviewed, removals are
  informational.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Sequence

from ..errors import ReproError
from .callgraph import CallGraph, build_callgraph
from .effects import (
    DEFAULT_ABSORB,
    DEFAULT_SNAPSHOT,
    EffectAnalysis,
    diff_snapshots,
    load_snapshot,
    snapshot_payload,
    write_snapshot,
)
from .framework import iter_python_files, parse_cached
from .lint import (
    LINT_EXIT_CLEAN,
    LINT_EXIT_FINDINGS,
    LINT_EXIT_INTERNAL,
    run_lint,
)
from .policy import DEFAULT_POLICY, ArchPolicy, load_policy

#: Default tree the arch tooling analyzes.
DEFAULT_PATHS = ("src/repro",)

ARCH_RULES = ("RPR008", "RPR009", "RPR010")

Echo = Callable[[str], None]


def _build(paths: Sequence[str],
           policy: ArchPolicy) -> tuple[CallGraph, EffectAnalysis]:
    """Parse ``paths`` and run the whole-program analysis."""
    contexts = []
    for file in iter_python_files(paths):
        try:
            contexts.append(parse_cached(file.read_text(), str(file)))
        except SyntaxError as exc:
            raise ReproError(f"cannot parse {file}: {exc}") from exc
    graph = build_callgraph(contexts, root_package=policy.root)
    absorb = dict(DEFAULT_ABSORB)
    absorb["alloc"] = tuple(policy.arena)
    return graph, EffectAnalysis(graph, absorb=absorb)


def arch_show(policy_path: str = DEFAULT_POLICY,
              echo: Echo = print) -> int:
    """Print the layer diagram, top-down, with effect budgets."""
    try:
        policy = load_policy(policy_path)
    except ReproError as exc:
        echo(f"arch: {exc}")
        return LINT_EXIT_INTERNAL
    echo(f"architecture of {policy.root!r} ({policy.path}): "
         f"{len(policy.layers)} layers, top-down")
    echo("")
    width = max(len(layer.name) for layer in policy.layers)
    for layer in reversed(policy.layers):
        budget = (f"  [no {', '.join(layer.forbid)}]"
                  if layer.forbid else "")
        uses = (f"  (uses: {', '.join(layer.uses)})"
                if layer.uses is not None else "")
        echo(f"  L{layer.index:<2} {layer.name:<{width}}  "
             f"{', '.join(layer.packages)}{budget}{uses}")
        if layer.index:
            echo(f"      {'|':>{width + 2}}")
    if policy.hot:
        echo("")
        echo(f"  arena-hot: {', '.join(policy.hot)}")
        echo(f"  arena:     {', '.join(policy.arena)}")
    if policy.waivers:
        echo("")
        echo(f"  {len(policy.waivers)} reviewed waiver(s):")
        for w in policy.waivers:
            echo(f"    {w.rule} {w.source} -> {w.target}: {w.reason}")
    return LINT_EXIT_CLEAN


def arch_check(paths: Sequence[str] = DEFAULT_PATHS,
               echo: Echo = print) -> int:
    """Run the architecture rules only; lint exit-code contract."""
    if not Path(DEFAULT_POLICY).is_file():
        echo(f"arch: no {DEFAULT_POLICY} in the working directory")
        return LINT_EXIT_INTERNAL
    return run_lint(list(paths), select=list(ARCH_RULES), echo=echo)


def graph_as_json(graph: CallGraph, granularity: str = "module") -> dict:
    if granularity == "function":
        return {
            "granularity": "function",
            "functions": {
                q: {
                    "module": node.module,
                    "calls": sorted(node.calls),
                    "external": sorted({c.target for c in node.external}),
                    "unresolved": sorted(
                        {c.target for c in node.unresolved}),
                }
                for q, node in sorted(graph.functions.items())
            },
        }
    imports: dict[str, set[str]] = {}
    for edge in graph.import_edges:
        target = edge.target
        while target and target not in graph.modules:
            target = target.rpartition(".")[0]
        if target and target != edge.from_module:
            imports.setdefault(edge.from_module, set()).add(target)
    for a, b in graph.module_call_edges():
        imports.setdefault(a, set()).add(b)
    return {
        "granularity": "module",
        "modules": sorted(graph.modules),
        "edges": [
            [a, b]
            for a in sorted(imports) for b in sorted(imports[a])
        ],
    }


def graph_as_dot(graph: CallGraph, policy: ArchPolicy) -> str:
    """Module-granularity Graphviz DOT, clustered by layer."""
    payload = graph_as_json(graph, "module")
    by_layer: dict[str, list[str]] = {}
    for module in payload["modules"]:
        layer = policy.layer_of(module)
        by_layer.setdefault(layer.name if layer else "?", []).append(module)
    out = ["digraph repro_arch {", "  rankdir=BT;",
           '  node [shape=box, fontsize=10];']
    for layer_name, modules in sorted(by_layer.items()):
        out.append(f'  subgraph "cluster_{layer_name}" {{')
        out.append(f'    label="{layer_name}";')
        for module in modules:
            out.append(f'    "{module}";')
        out.append("  }")
    for a, b in payload["edges"]:
        out.append(f'  "{a}" -> "{b}";')
    out.append("}")
    return "\n".join(out) + "\n"


def arch_graph(paths: Sequence[str] = DEFAULT_PATHS,
               output_format: str = "json",
               granularity: str = "module",
               policy_path: str = DEFAULT_POLICY,
               echo: Echo = print) -> int:
    try:
        policy = load_policy(policy_path)
        graph, _ = _build(paths, policy)
        if output_format == "dot":
            echo(graph_as_dot(graph, policy).rstrip("\n"))
        else:
            echo(json.dumps(graph_as_json(graph, granularity), indent=2,
                            sort_keys=True))
    except ReproError as exc:
        echo(f"arch: {exc}")
        return LINT_EXIT_INTERNAL
    return LINT_EXIT_CLEAN


def arch_effects(paths: Sequence[str] = DEFAULT_PATHS,
                 prefix: str = "",
                 policy_path: str = DEFAULT_POLICY,
                 echo: Echo = print) -> int:
    """Print the inferred effect sets (optionally filtered by prefix)."""
    try:
        policy = load_policy(policy_path)
        _, analysis = _build(paths, policy)
    except ReproError as exc:
        echo(f"arch: {exc}")
        return LINT_EXIT_INTERNAL
    shown = 0
    for qname, effects in analysis.effect_sets().items():
        if prefix and not qname.startswith(prefix):
            continue
        echo(f"{qname}: {', '.join(effects)}")
        shown += 1
    echo(f"({shown} function(s) with effects)")
    return LINT_EXIT_CLEAN


def arch_snapshot(paths: Sequence[str] = DEFAULT_PATHS,
                  output: str = DEFAULT_SNAPSHOT,
                  policy_path: str = DEFAULT_POLICY,
                  echo: Echo = print) -> int:
    try:
        policy = load_policy(policy_path)
        _, analysis = _build(paths, policy)
        write_snapshot(analysis, output)
    except ReproError as exc:
        echo(f"arch: {exc}")
        return LINT_EXIT_INTERNAL
    count = len(snapshot_payload(analysis)["functions"])
    echo(f"wrote effect snapshot for {count} function(s) to {output}")
    return LINT_EXIT_CLEAN


def arch_diff(paths: Sequence[str] = DEFAULT_PATHS,
              against: str = DEFAULT_SNAPSHOT,
              policy_path: str = DEFAULT_POLICY,
              echo: Echo = print) -> int:
    """Diff current effects vs the committed snapshot.

    Exit 1 when any function *gained* an effect (review required; rerun
    ``repro arch snapshot`` after accepting).  Removed effects are
    reported but do not fail.
    """
    try:
        policy = load_policy(policy_path)
        _, analysis = _build(paths, policy)
        old = load_snapshot(against)
    except ReproError as exc:
        echo(f"arch: {exc}")
        return LINT_EXIT_INTERNAL
    added, removed = diff_snapshots(old, snapshot_payload(analysis))
    for line in removed:
        echo(f"note: {line}")
    for line in added:
        echo(f"NEW EFFECT: {line}")
    if added:
        echo(f"{len(added)} new effect(s) vs {against}; review the "
             f"chain(s) with `repro arch effects` and refresh the "
             f"snapshot with `repro arch snapshot` once accepted")
        return LINT_EXIT_FINDINGS
    echo(f"effects unchanged vs {against}"
         + (f" ({len(removed)} removal(s))" if removed else ""))
    return LINT_EXIT_CLEAN
