"""RPR004: design-space / consumer consistency (the paper's core contract).

The whole performance–accuracy study is only meaningful if the space
HyperMapper explores (``repro/hypermapper/space.py::kfusion_design_space``,
built from ``repro/kfusion/params.py::parameter_specs``) is exactly the
set of parameters KinectFusion consumes (:class:`KFusionParams` /
``DEFAULTS``), with the same defaults, defaults inside the declared
bounds, and every parameter actually read somewhere in the pipeline.  A
spec added without a consumer silently explores a dead knob; a consumer
field missing from the space silently pins part of the trade-off.

No off-the-shelf linter can state this, so RPR004 does: it is a purely
static cross-module pass — it extracts the ``DEFAULTS`` dict literal,
the ``ParameterSpec(...)`` declarations and the ``KFusionParams``
dataclass fields from the ASTs, resolves ``DEFAULTS["name"]`` subscripts
to their literal values, collects every ``.name`` attribute read in the
``kfusion`` package, and cross-checks the lot.  Nothing is imported or
executed, so the checker works on scratch copies and doctored fixtures
alike.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Sequence

from .findings import Finding
from .framework import ModuleContext, ProjectChecker, register_checker

PARAMS_SUFFIX = ("kfusion", "params.py")
SPACE_SUFFIX = ("hypermapper", "space.py")

_MISSING = object()


@dataclass(frozen=True)
class SpecInfo:
    """One ``ParameterSpec(...)`` declaration, statically extracted."""

    name: str
    kind: str | None
    default: object  # resolved literal, or _MISSING when unresolvable
    low: object
    high: object
    choices: object
    lineno: int


def _ends_with(path_parts: Sequence[str], suffix: Sequence[str]) -> bool:
    return tuple(path_parts[-len(suffix):]) == tuple(suffix)


def _literal(node: ast.AST, defaults: dict) -> object:
    """Resolve a literal expression, following ``DEFAULTS["x"]`` lookups."""
    if node is None:
        return _MISSING
    if (isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == "DEFAULTS"
            and isinstance(node.slice, ast.Constant)):
        return defaults.get(node.slice.value, (_MISSING, 0))[0]
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return _MISSING


def extract_defaults(tree: ast.Module) -> dict[str, tuple[object, int]]:
    """``{name: (value, lineno)}`` from the module-level ``DEFAULTS`` dict."""
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if "DEFAULTS" not in names or not isinstance(node.value, ast.Dict):
            continue
        out = {}
        for key, value in zip(node.value.keys, node.value.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                try:
                    out[key.value] = (ast.literal_eval(value), key.lineno)
                except (ValueError, SyntaxError):
                    out[key.value] = (_MISSING, key.lineno)
        return out
    return {}


def extract_specs(tree: ast.Module,
                  defaults: dict[str, tuple[object, int]]) -> list[SpecInfo]:
    """Every ``ParameterSpec(...)`` call in the module, as :class:`SpecInfo`."""
    specs = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "ParameterSpec"):
            continue
        pos = list(node.args)
        kw = {k.arg: k.value for k in node.keywords if k.arg}
        name_node = pos[0] if pos else kw.get("name")
        if not (isinstance(name_node, ast.Constant)
                and isinstance(name_node.value, str)):
            continue
        kind_node = pos[1] if len(pos) > 1 else kw.get("kind")
        default_node = pos[2] if len(pos) > 2 else kw.get("default")
        kind = (kind_node.value
                if isinstance(kind_node, ast.Constant) else None)
        specs.append(SpecInfo(
            name=name_node.value,
            kind=kind,
            default=_literal(default_node, defaults),
            low=_literal(kw.get("low"), defaults),
            high=_literal(kw.get("high"), defaults),
            choices=_literal(kw.get("choices"), defaults),
            lineno=node.lineno,
        ))
    return specs


def extract_dataclass_fields(
        tree: ast.Module, class_name: str,
        defaults: dict[str, tuple[object, int]]) -> dict[str, tuple[object, int]]:
    """``{field: (default_value, lineno)}`` of an annotated dataclass."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            out = {}
            for stmt in node.body:
                if (isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)):
                    out[stmt.target.id] = (
                        _literal(stmt.value, defaults), stmt.lineno
                    )
            return out
    return {}


def collect_attribute_reads(trees: Sequence[ast.Module]) -> set[str]:
    """Every ``<expr>.name`` attribute read across the given modules."""
    reads: set[str] = set()
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and isinstance(node.ctx,
                                                              ast.Load):
                reads.add(node.attr)
    return reads


def _in_bounds(spec: SpecInfo) -> str | None:
    """Message when the spec's default violates its own bounds, else None."""
    if spec.default is _MISSING:
        return None
    if spec.kind in ("integer", "real"):
        if spec.low is _MISSING or spec.high is _MISSING:
            return None
        try:
            in_bounds = spec.low <= spec.default <= spec.high
        except TypeError:
            return (f"default {spec.default!r} is not comparable with "
                    f"bounds [{spec.low!r}, {spec.high!r}]")
        if not in_bounds:
            return (f"default {spec.default!r} outside declared bounds "
                    f"[{spec.low!r}, {spec.high!r}]")
    elif spec.kind in ("ordinal", "categorical"):
        if spec.choices is _MISSING or spec.choices is None:
            return None
        if spec.default not in tuple(spec.choices):
            return (f"default {spec.default!r} not among declared choices "
                    f"{tuple(spec.choices)!r}")
    return None


def compare_space_and_consumer(
    specs: Sequence[SpecInfo],
    defaults: dict[str, tuple[object, int]],
    fields: dict[str, tuple[object, int]],
    attribute_reads: set[str],
) -> list[tuple[str, int, str]]:
    """Cross-check the extracted declarations.

    Returns ``(param_name, lineno, message)`` tuples; pure function so
    the rule logic is unit-testable on synthetic declarations.
    """
    problems: list[tuple[str, int, str]] = []
    spec_by_name = {s.name: s for s in specs}

    for spec in specs:
        if spec.name not in fields:
            problems.append((spec.name, spec.lineno, (
                f"design-space parameter {spec.name!r} has no KFusionParams "
                f"field — the explored knob is never consumed"
            )))
        if spec.name not in defaults:
            problems.append((spec.name, spec.lineno, (
                f"design-space parameter {spec.name!r} missing from "
                f"DEFAULTS — the reference configuration cannot set it"
            )))
        msg = _in_bounds(spec)
        if msg is not None:
            problems.append((spec.name, spec.lineno,
                             f"parameter {spec.name!r}: {msg}"))

    for name, (value, lineno) in defaults.items():
        if name not in spec_by_name:
            problems.append((name, lineno, (
                f"DEFAULTS entry {name!r} is not declared in the design "
                f"space — the knob exists but is never explorable"
            )))
            continue
        spec = spec_by_name[name]
        if (spec.default is not _MISSING and value is not _MISSING
                and spec.default != value):
            problems.append((name, spec.lineno, (
                f"parameter {name!r}: design-space default {spec.default!r} "
                f"!= DEFAULTS value {value!r}"
            )))

    for name, (value, lineno) in fields.items():
        if name not in spec_by_name:
            problems.append((name, lineno, (
                f"KFusionParams field {name!r} is not declared in the "
                f"design space — part of the trade-off is pinned"
            )))
        elif (value is not _MISSING
              and spec_by_name[name].default is not _MISSING
              and value != spec_by_name[name].default):
            problems.append((name, lineno, (
                f"KFusionParams field {name!r} default {value!r} != "
                f"design-space default {spec_by_name[name].default!r}"
            )))

    for spec in specs:
        if spec.name in fields and spec.name not in attribute_reads:
            problems.append((spec.name, spec.lineno, (
                f"parameter {spec.name!r} is declared and defaulted but "
                f"never read (no .{spec.name} attribute access in the "
                f"kfusion package)"
            )))
    return problems


@register_checker
class DesignSpaceConsistencyChecker(ProjectChecker):
    """RPR004 over the real tree: params.py vs space.py vs the pipeline."""

    rule_id = "RPR004"
    title = ("config-space consistency: kfusion_design_space == KFusionParams "
             "== DEFAULTS, defaults in bounds, every knob consumed")

    def _params_ctx(self, contexts) -> ModuleContext | None:
        for ctx in contexts:
            if _ends_with(ctx.path_parts, PARAMS_SUFFIX):
                return ctx
        return None

    def _space_ctx(self, contexts) -> ModuleContext | None:
        for ctx in contexts:
            if _ends_with(ctx.path_parts, SPACE_SUFFIX):
                return ctx
        return None

    def applies(self, contexts) -> bool:
        return (self._params_ctx(contexts) is not None
                and self._space_ctx(contexts) is not None)

    def check_project(self, contexts) -> Iterator[Finding]:
        params_ctx = self._params_ctx(contexts)
        space_ctx = self._space_ctx(contexts)
        assert params_ctx is not None and space_ctx is not None

        defaults = extract_defaults(params_ctx.tree)
        specs = extract_specs(params_ctx.tree, defaults)
        fields = extract_dataclass_fields(params_ctx.tree, "KFusionParams",
                                          defaults)
        kfusion_trees = [
            ctx.tree for ctx in contexts if "kfusion" in ctx.path_parts
        ]
        reads = collect_attribute_reads(kfusion_trees)

        if not specs or not defaults:
            yield Finding(
                path=params_ctx.path, line=1, col=1, rule_id=self.rule_id,
                message=("could not extract ParameterSpec declarations / "
                         "DEFAULTS from kfusion/params.py — the RPR004 "
                         "contract is unverifiable"),
            )
            return

        # The space module must actually build from parameter_specs() —
        # a hand-maintained copy would drift silently.
        if not self._space_delegates(space_ctx):
            yield Finding(
                path=space_ctx.path, line=1, col=1, rule_id=self.rule_id,
                message=("kfusion_design_space does not build from "
                         "kfusion.params.parameter_specs(); the explored "
                         "space can drift from the consumed parameters"),
            )

        for name, lineno, message in compare_space_and_consumer(
                specs, defaults, fields, reads):
            yield Finding(
                path=params_ctx.path, line=lineno, col=1,
                rule_id=self.rule_id, message=message,
            )

    @staticmethod
    def _space_delegates(space_ctx: ModuleContext) -> bool:
        for node in ast.walk(space_ctx.tree):
            if (isinstance(node, ast.FunctionDef)
                    and node.name == "kfusion_design_space"):
                for inner in ast.walk(node):
                    if (isinstance(inner, ast.Call)
                            and isinstance(inner.func, ast.Name)
                            and inner.func.id == "parameter_specs"):
                        return True
        return False
