"""RPR004: design-space / consumer consistency (the paper's core contract).

The whole performance–accuracy study is only meaningful if the space
HyperMapper explores (``repro/hypermapper/space.py::kfusion_design_space``,
built from ``repro/kfusion/params.py::parameter_specs``) is exactly the
set of parameters KinectFusion consumes (:class:`KFusionParams` /
``DEFAULTS``), with the same defaults, defaults inside the declared
bounds, and every parameter actually read somewhere in the pipeline.  A
spec added without a consumer silently explores a dead knob; a consumer
field missing from the space silently pins part of the trade-off.

No off-the-shelf linter can state this, so RPR004 does: it is a purely
static cross-module pass — it extracts the ``DEFAULTS`` dict literal,
the ``ParameterSpec(...)`` declarations and the ``KFusionParams``
dataclass fields from the ASTs, resolves ``DEFAULTS["name"]`` subscripts
to their literal values, collects every ``.name`` attribute read in the
``kfusion`` package, and cross-checks the lot.  Nothing is imported or
executed, so the checker works on scratch copies and doctored fixtures
alike.

The rule has a second arm for the kernel-backend seam
(``perf/registry.py``): every slot of each registered
:class:`~repro.perf.registry.KernelBackend` is resolved through the
static call graph (trivial ``return f(...)`` adapters are unwrapped to
the kernel they forward to), and the ``@contract`` declarations of the
fast and reference kernels for the same slot are compared — shape
tokens must be identical and the dtype *kind* must match, while the
f32/f64 width may differ (that width difference IS the backend
distinction).  A kernel that declares a contract on one side only is
flagged too: an undeclared twin silently escapes the runtime checks.

A third arm ties the DSE to the registry: space.py's static
``KERNEL_BACKEND_CHOICES`` tuple (the ``kernel_backend`` categorical
dimension) must name exactly the always-registered backends extracted
from registry.py — a sampled choice the registry cannot construct would
crash the exploration, and an unexplored backend pins the axis.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Sequence

from .callgraph import CallGraph, build_callgraph, module_name_for
from .contracts import ContractError, parse_contract
from .findings import Finding
from .framework import ModuleContext, ProjectChecker, register_checker

PARAMS_SUFFIX = ("kfusion", "params.py")
SPACE_SUFFIX = ("hypermapper", "space.py")
REGISTRY_SUFFIX = ("perf", "registry.py")

#: KernelBackend slots whose two implementations must agree.
BACKEND_SLOTS = (
    "bilateral_filter", "build_pyramid", "vertex_normal_pyramid",
    "track", "integrate", "raycast_model",
)
REFERENCE_BACKEND_NAME = "reference"

_MISSING = object()


@dataclass(frozen=True)
class SpecInfo:
    """One ``ParameterSpec(...)`` declaration, statically extracted."""

    name: str
    kind: str | None
    default: object  # resolved literal, or _MISSING when unresolvable
    low: object
    high: object
    choices: object
    lineno: int


def _ends_with(path_parts: Sequence[str], suffix: Sequence[str]) -> bool:
    return tuple(path_parts[-len(suffix):]) == tuple(suffix)


def _literal(node: ast.AST, defaults: dict) -> object:
    """Resolve a literal expression, following ``DEFAULTS["x"]`` lookups."""
    if node is None:
        return _MISSING
    if (isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == "DEFAULTS"
            and isinstance(node.slice, ast.Constant)):
        return defaults.get(node.slice.value, (_MISSING, 0))[0]
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return _MISSING


def extract_defaults(tree: ast.Module) -> dict[str, tuple[object, int]]:
    """``{name: (value, lineno)}`` from the module-level ``DEFAULTS`` dict."""
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if "DEFAULTS" not in names or not isinstance(node.value, ast.Dict):
            continue
        out = {}
        for key, value in zip(node.value.keys, node.value.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                try:
                    out[key.value] = (ast.literal_eval(value), key.lineno)
                except (ValueError, SyntaxError):
                    out[key.value] = (_MISSING, key.lineno)
        return out
    return {}


def extract_specs(tree: ast.Module,
                  defaults: dict[str, tuple[object, int]]) -> list[SpecInfo]:
    """Every ``ParameterSpec(...)`` call in the module, as :class:`SpecInfo`."""
    specs = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "ParameterSpec"):
            continue
        pos = list(node.args)
        kw = {k.arg: k.value for k in node.keywords if k.arg}
        name_node = pos[0] if pos else kw.get("name")
        if not (isinstance(name_node, ast.Constant)
                and isinstance(name_node.value, str)):
            continue
        kind_node = pos[1] if len(pos) > 1 else kw.get("kind")
        default_node = pos[2] if len(pos) > 2 else kw.get("default")
        kind = (kind_node.value
                if isinstance(kind_node, ast.Constant) else None)
        specs.append(SpecInfo(
            name=name_node.value,
            kind=kind,
            default=_literal(default_node, defaults),
            low=_literal(kw.get("low"), defaults),
            high=_literal(kw.get("high"), defaults),
            choices=_literal(kw.get("choices"), defaults),
            lineno=node.lineno,
        ))
    return specs


def extract_dataclass_fields(
        tree: ast.Module, class_name: str,
        defaults: dict[str, tuple[object, int]]) -> dict[str, tuple[object, int]]:
    """``{field: (default_value, lineno)}`` of an annotated dataclass."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            out = {}
            for stmt in node.body:
                if (isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)):
                    out[stmt.target.id] = (
                        _literal(stmt.value, defaults), stmt.lineno
                    )
            return out
    return {}


def collect_attribute_reads(trees: Sequence[ast.Module]) -> set[str]:
    """Every ``<expr>.name`` attribute read across the given modules."""
    reads: set[str] = set()
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and isinstance(node.ctx,
                                                              ast.Load):
                reads.add(node.attr)
    return reads


def _in_bounds(spec: SpecInfo) -> str | None:
    """Message when the spec's default violates its own bounds, else None."""
    if spec.default is _MISSING:
        return None
    if spec.kind in ("integer", "real"):
        if spec.low is _MISSING or spec.high is _MISSING:
            return None
        try:
            in_bounds = spec.low <= spec.default <= spec.high
        except TypeError:
            return (f"default {spec.default!r} is not comparable with "
                    f"bounds [{spec.low!r}, {spec.high!r}]")
        if not in_bounds:
            return (f"default {spec.default!r} outside declared bounds "
                    f"[{spec.low!r}, {spec.high!r}]")
    elif spec.kind in ("ordinal", "categorical"):
        if spec.choices is _MISSING or spec.choices is None:
            return None
        if spec.default not in tuple(spec.choices):
            return (f"default {spec.default!r} not among declared choices "
                    f"{tuple(spec.choices)!r}")
    return None


def compare_space_and_consumer(
    specs: Sequence[SpecInfo],
    defaults: dict[str, tuple[object, int]],
    fields: dict[str, tuple[object, int]],
    attribute_reads: set[str],
) -> list[tuple[str, int, str]]:
    """Cross-check the extracted declarations.

    Returns ``(param_name, lineno, message)`` tuples; pure function so
    the rule logic is unit-testable on synthetic declarations.
    """
    problems: list[tuple[str, int, str]] = []
    spec_by_name = {s.name: s for s in specs}

    for spec in specs:
        if spec.name not in fields:
            problems.append((spec.name, spec.lineno, (
                f"design-space parameter {spec.name!r} has no KFusionParams "
                f"field — the explored knob is never consumed"
            )))
        if spec.name not in defaults:
            problems.append((spec.name, spec.lineno, (
                f"design-space parameter {spec.name!r} missing from "
                f"DEFAULTS — the reference configuration cannot set it"
            )))
        msg = _in_bounds(spec)
        if msg is not None:
            problems.append((spec.name, spec.lineno,
                             f"parameter {spec.name!r}: {msg}"))

    for name, (value, lineno) in defaults.items():
        if name not in spec_by_name:
            problems.append((name, lineno, (
                f"DEFAULTS entry {name!r} is not declared in the design "
                f"space — the knob exists but is never explorable"
            )))
            continue
        spec = spec_by_name[name]
        if (spec.default is not _MISSING and value is not _MISSING
                and spec.default != value):
            problems.append((name, spec.lineno, (
                f"parameter {name!r}: design-space default {spec.default!r} "
                f"!= DEFAULTS value {value!r}"
            )))

    for name, (value, lineno) in fields.items():
        if name not in spec_by_name:
            problems.append((name, lineno, (
                f"KFusionParams field {name!r} is not declared in the "
                f"design space — part of the trade-off is pinned"
            )))
        elif (value is not _MISSING
              and spec_by_name[name].default is not _MISSING
              and value != spec_by_name[name].default):
            problems.append((name, lineno, (
                f"KFusionParams field {name!r} default {value!r} != "
                f"design-space default {spec_by_name[name].default!r}"
            )))

    for spec in specs:
        if spec.name in fields and spec.name not in attribute_reads:
            problems.append((spec.name, spec.lineno, (
                f"parameter {spec.name!r} is declared and defaulted but "
                f"never read (no .{spec.name} attribute access in the "
                f"kfusion package)"
            )))
    return problems


# -- backend arm: fast vs reference kernel @contract declarations ----------

def _dotted(node: ast.AST) -> str | None:
    """Best-effort dotted text of a ``Name``/``Attribute`` chain."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def extract_contract_decls(func: ast.AST) -> dict[str, str] | None:
    """``{param: spec}`` from a ``@contract(...)`` decorator, else None."""
    for dec in getattr(func, "decorator_list", []):
        if not isinstance(dec, ast.Call):
            continue
        name = (dec.func.id if isinstance(dec.func, ast.Name)
                else dec.func.attr if isinstance(dec.func, ast.Attribute)
                else None)
        if name != "contract":
            continue
        out = {}
        for kw in dec.keywords:
            if (kw.arg and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)):
                out[kw.arg] = kw.value.value
        return out
    return None


def extract_kernel_backends(
        tree: ast.Module) -> dict[str, tuple[int, dict[str, tuple]]]:
    """``{backend_name: (lineno, {slot: (dotted_target, lineno)})}``.

    Statically reads every ``KernelBackend(name=..., slot=callable, ...)``
    literal; slot values that are not plain name/attribute references
    resolve to ``(None, lineno)`` (honest failure, skipped downstream).
    """
    out: dict[str, tuple[int, dict[str, tuple]]] = {}
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "KernelBackend"):
            continue
        name = None
        slots: dict[str, tuple] = {}
        for kw in node.keywords:
            if kw.arg == "name" and isinstance(kw.value, ast.Constant):
                name = kw.value.value
            elif kw.arg in BACKEND_SLOTS:
                slots[kw.arg] = (_dotted(kw.value), kw.value.lineno)
        if isinstance(name, str):
            out[name] = (node.lineno, slots)
    return out


def extract_kernel_backend_choices(
        tree: ast.Module) -> tuple[tuple, int] | None:
    """``(choices, lineno)`` from space.py's ``KERNEL_BACKEND_CHOICES``.

    The design-space dimension is a static tuple literal precisely so
    this cross-check needs no imports; an unreadable declaration returns
    ``None`` and the caller reports the contract unverifiable.
    """
    for node in tree.body:
        if not (isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name)
                        and t.id == "KERNEL_BACKEND_CHOICES"
                        for t in node.targets)):
            continue
        try:
            value = ast.literal_eval(node.value)
        except (ValueError, SyntaxError):
            return None
        if isinstance(value, tuple):
            return value, node.lineno
        return None
    return None


def resolve_backend_kernel(graph: CallGraph, qname: str,
                           _depth: int = 0) -> str:
    """Follow trivial ``return f(...)`` adapters to the kernel they wrap.

    An adapter that declares its own ``@contract`` — or does anything
    beyond forwarding a single call — is its own kernel and is compared
    as-is.
    """
    node = graph.functions.get(qname)
    if node is None or _depth > 4:
        return qname
    func = node.ast_node
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return qname
    if extract_contract_decls(func) is not None:
        return qname
    body = [stmt for stmt in func.body
            if not (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant))]
    if (len(body) == 1 and isinstance(body[0], ast.Return)
            and isinstance(body[0].value, ast.Call)
            and len(node.calls) == 1 and not node.unresolved):
        return resolve_backend_kernel(graph, next(iter(node.calls)),
                                      _depth + 1)
    return qname


def compare_backend_contracts(
    reference: dict[str, tuple],
    other: dict[str, tuple],
    other_name: str,
) -> list[tuple[int, str]]:
    """Cross-check two backends' resolved kernel contracts, slot by slot.

    Both maps are ``{slot: (kernel_qname, {param: spec} | None, lineno)}``
    with ``kernel_qname`` already adapter-unwrapped.  Returns
    ``(lineno, message)`` problems; pure function so the rule logic is
    unit-testable on synthetic declarations.  Shape tokens must match
    exactly and dtype *kinds* must match; the declared float width may
    differ (f32 vs f64 is the backend distinction RPR004 exists to keep
    honest, not a drift).
    """
    problems: list[tuple[int, str]] = []
    for slot in BACKEND_SLOTS:
        ref = reference.get(slot)
        oth = other.get(slot)
        if ref is None or oth is None:
            continue
        ref_qname, ref_c, _ = ref
        oth_qname, oth_c, lineno = oth
        if ref_qname is None or oth_qname is None:
            continue  # unresolvable slot (dynamic value): nothing to check
        if ref_c is None and oth_c is None:
            continue  # symmetric absence: neither side promises anything
        if ref_c is None or oth_c is None:
            declared = (REFERENCE_BACKEND_NAME if ref_c is not None
                        else other_name)
            bare, bare_qname = (
                (other_name, oth_qname) if ref_c is not None
                else (REFERENCE_BACKEND_NAME, ref_qname))
            problems.append((lineno, (
                f"backend slot {slot!r}: the {declared!r} kernel declares "
                f"@contract but the {bare!r} kernel ({bare_qname}) does "
                f"not — both backends must declare identical shapes"
            )))
            continue
        if set(ref_c) != set(oth_c):
            only_ref = sorted(set(ref_c) - set(oth_c))
            only_oth = sorted(set(oth_c) - set(ref_c))
            detail = "; ".join(
                f"only {who}: {', '.join(params)}"
                for who, params in ((REFERENCE_BACKEND_NAME, only_ref),
                                    (other_name, only_oth))
                if params
            )
            problems.append((lineno, (
                f"backend slot {slot!r}: @contract covers different "
                f"parameters on the two backends ({detail})"
            )))
            continue
        for param in sorted(ref_c):
            try:
                ref_spec = parse_contract(ref_c[param])
                oth_spec = parse_contract(oth_c[param])
            except ContractError as exc:
                problems.append((lineno, (
                    f"backend slot {slot!r}, parameter {param!r}: "
                    f"unparsable contract ({exc})"
                )))
                continue
            if (ref_spec.dims != oth_spec.dims
                    or ref_spec.ellipsis_leading
                    != oth_spec.ellipsis_leading):
                problems.append((lineno, (
                    f"backend slot {slot!r}, parameter {param!r}: "
                    f"{other_name} declares shape {oth_c[param]!r} but "
                    f"reference declares {ref_c[param]!r}"
                )))
            elif ref_spec.kind != oth_spec.kind:
                problems.append((lineno, (
                    f"backend slot {slot!r}, parameter {param!r}: dtype "
                    f"kind differs ({other_name} {oth_c[param]!r} vs "
                    f"reference {ref_c[param]!r}; width may differ, "
                    f"kind may not)"
                )))
    return problems


@register_checker
class DesignSpaceConsistencyChecker(ProjectChecker):
    """RPR004 over the real tree: params.py vs space.py vs the pipeline."""

    rule_id = "RPR004"
    title = ("config-space consistency: kfusion_design_space == KFusionParams "
             "== DEFAULTS, defaults in bounds, every knob consumed; kernel "
             "backends declare matching @contract shapes")

    def _params_ctx(self, contexts) -> ModuleContext | None:
        for ctx in contexts:
            if _ends_with(ctx.path_parts, PARAMS_SUFFIX):
                return ctx
        return None

    def _space_ctx(self, contexts) -> ModuleContext | None:
        for ctx in contexts:
            if _ends_with(ctx.path_parts, SPACE_SUFFIX):
                return ctx
        return None

    def _registry_ctx(self, contexts) -> ModuleContext | None:
        for ctx in contexts:
            if _ends_with(ctx.path_parts, REGISTRY_SUFFIX):
                return ctx
        return None

    def applies(self, contexts) -> bool:
        return ((self._params_ctx(contexts) is not None
                 and self._space_ctx(contexts) is not None)
                or self._registry_ctx(contexts) is not None)

    def check_project(self, contexts) -> Iterator[Finding]:
        yield from self._check_design_space(contexts)
        yield from self._check_backend_contracts(contexts)
        yield from self._check_backend_choices(contexts)

    def _check_design_space(self, contexts) -> Iterator[Finding]:
        params_ctx = self._params_ctx(contexts)
        space_ctx = self._space_ctx(contexts)
        if params_ctx is None or space_ctx is None:
            return

        defaults = extract_defaults(params_ctx.tree)
        specs = extract_specs(params_ctx.tree, defaults)
        fields = extract_dataclass_fields(params_ctx.tree, "KFusionParams",
                                          defaults)
        kfusion_trees = [
            ctx.tree for ctx in contexts if "kfusion" in ctx.path_parts
        ]
        reads = collect_attribute_reads(kfusion_trees)

        if not specs or not defaults:
            yield Finding(
                path=params_ctx.path, line=1, col=1, rule_id=self.rule_id,
                message=("could not extract ParameterSpec declarations / "
                         "DEFAULTS from kfusion/params.py — the RPR004 "
                         "contract is unverifiable"),
            )
            return

        # The space module must actually build from parameter_specs() —
        # a hand-maintained copy would drift silently.
        if not self._space_delegates(space_ctx):
            yield Finding(
                path=space_ctx.path, line=1, col=1, rule_id=self.rule_id,
                message=("kfusion_design_space does not build from "
                         "kfusion.params.parameter_specs(); the explored "
                         "space can drift from the consumed parameters"),
            )

        for name, lineno, message in compare_space_and_consumer(
                specs, defaults, fields, reads):
            yield Finding(
                path=params_ctx.path, line=lineno, col=1,
                rule_id=self.rule_id, message=message,
            )

    def _check_backend_contracts(self, contexts) -> Iterator[Finding]:
        registry_ctx = self._registry_ctx(contexts)
        if registry_ctx is None:
            return
        backends = extract_kernel_backends(registry_ctx.tree)
        reference = backends.pop(REFERENCE_BACKEND_NAME, None)
        if reference is None or not backends:
            return  # nothing to cross-check against
        graph = build_callgraph(contexts)
        registry_module = module_name_for(registry_ctx.path,
                                          graph.root_package)
        if registry_module is None:
            return

        def resolve_slots(slots: dict[str, tuple]) -> dict[str, tuple]:
            resolved = {}
            for slot, (dotted, lineno) in slots.items():
                qname = decls = None
                if dotted is not None:
                    qname = graph.resolve_function(
                        f"{registry_module}.{dotted}")
                if qname is not None:
                    qname = resolve_backend_kernel(graph, qname)
                    node = graph.functions[qname].ast_node
                    if node is not None:
                        decls = extract_contract_decls(node)
                resolved[slot] = (qname, decls, lineno)
            return resolved

        reference_resolved = resolve_slots(reference[1])
        for name in sorted(backends):
            for lineno, message in compare_backend_contracts(
                    reference_resolved, resolve_slots(backends[name][1]),
                    name):
                yield Finding(
                    path=registry_ctx.path, line=lineno, col=1,
                    rule_id=self.rule_id, message=message,
                )

    def _check_backend_choices(self, contexts) -> Iterator[Finding]:
        """The kernel_backend dimension must name exactly the registered
        always-on backends — a choice the registry does not construct
        would crash every exploration that samples it, and a backend
        missing from the choices silently pins the sparsity axis."""
        space_ctx = self._space_ctx(contexts)
        registry_ctx = self._registry_ctx(contexts)
        if space_ctx is None or registry_ctx is None:
            return
        extracted = extract_kernel_backend_choices(space_ctx.tree)
        registered = set(extract_kernel_backends(registry_ctx.tree))
        if not registered:
            return  # backend arm already reports an empty registry
        if extracted is None:
            yield Finding(
                path=space_ctx.path, line=1, col=1, rule_id=self.rule_id,
                message=("KERNEL_BACKEND_CHOICES is missing or not a "
                         "static tuple literal — the kernel_backend "
                         "design-space dimension is unverifiable against "
                         "the registry"),
            )
            return
        choices, lineno = extracted
        if set(choices) != registered:
            only_space = sorted(set(choices) - registered)
            only_registry = sorted(registered - set(choices))
            detail = "; ".join(
                f"only in {where}: {', '.join(names)}"
                for where, names in (("space", only_space),
                                     ("registry", only_registry))
                if names
            )
            yield Finding(
                path=space_ctx.path, line=lineno, col=1,
                rule_id=self.rule_id,
                message=(f"KERNEL_BACKEND_CHOICES disagrees with the "
                         f"KernelBackend declarations in perf/registry.py "
                         f"({detail}) — the explored backend dimension "
                         f"must match the registered backends"),
            )

    @staticmethod
    def _space_delegates(space_ctx: ModuleContext) -> bool:
        for node in ast.walk(space_ctx.tree):
            if (isinstance(node, ast.FunctionDef)
                    and node.name == "kfusion_design_space"):
                for inner in ast.walk(node):
                    if (isinstance(inner, ast.Call)
                            and isinstance(inner.func, ast.Name)
                            and inner.func.id == "parameter_specs"):
                        return True
        return False
