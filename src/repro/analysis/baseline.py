"""Baseline suppression — adopt the linter without fixing the world first.

A baseline file records the fingerprints of currently-accepted findings
(with a count per fingerprint, since the same violation can occur more
than once in a file).  ``repro lint --write-baseline`` snapshots the
current findings; later runs subtract the baseline and fail only on
*new* findings.

Fingerprint formats:

* **version 2** (current) — ``rule::path::symbol::sha1(content)[:12]``;
  anchored on the enclosing symbol and the flagged line's text, so
  unrelated edits — including ones that renumber every line — do not
  churn the committed file.
* **version 1** (legacy) — ``rule::path::message``.  Still loads and
  applies (via :attr:`~repro.analysis.findings.Finding.fingerprint_v1`)
  so old baselines keep working; ``repro lint --migrate-baseline``
  rewrites one in place to version 2.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from .findings import Finding
from .framework import AnalysisError

BASELINE_VERSION = 2

#: Default baseline location, relative to the working directory.
DEFAULT_BASELINE = ".reprolint.json"


def write_baseline(findings: Sequence[Finding], path: str | Path) -> int:
    """Snapshot ``findings`` as the accepted baseline; returns the count."""
    counts = Counter(f.fingerprint for f in findings)
    doc = {
        "version": BASELINE_VERSION,
        "fingerprints": dict(sorted(counts.items())),
    }
    Path(path).write_text(json.dumps(doc, indent=2) + "\n")
    return sum(counts.values())


def load_baseline(path: str | Path) -> Counter:
    """Load a baseline file into a fingerprint -> allowance counter.

    Accepts both fingerprint versions; the returned counter carries the
    file's version as a ``.version`` attribute so
    :func:`apply_baseline` knows which :class:`Finding` fingerprint to
    match against.
    """
    try:
        doc = json.loads(Path(path).read_text())
    except OSError as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or "fingerprints" not in doc:
        raise AnalysisError(f"baseline {path} has no 'fingerprints' map")
    version = doc.get("version")
    if version not in (1, BASELINE_VERSION):
        raise AnalysisError(
            f"baseline {path} has version {version!r}, "
            f"expected 1 or {BASELINE_VERSION}"
        )
    fingerprints = doc["fingerprints"]
    if not isinstance(fingerprints, dict):
        raise AnalysisError(f"baseline {path}: 'fingerprints' must be a map")
    counter = Counter({str(k): int(v) for k, v in fingerprints.items()})
    counter.version = version
    return counter


def _key_fn(baseline: Counter):
    if getattr(baseline, "version", BASELINE_VERSION) == 1:
        return lambda f: f.fingerprint_v1
    return lambda f: f.fingerprint


def apply_baseline(findings: Sequence[Finding],
                   baseline: Counter) -> tuple[list[Finding], int]:
    """Split findings into (new, n_suppressed) against a baseline.

    Each fingerprint suppresses up to its recorded count of occurrences;
    findings beyond the allowance are treated as new.  The fingerprint
    format follows the baseline's recorded version (``.version`` from
    :func:`load_baseline`; plain counters are treated as current).
    """
    key = _key_fn(baseline)
    allowance = Counter(baseline)
    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        if allowance[key(finding)] > 0:
            allowance[key(finding)] -= 1
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def migrate_baseline(findings: Sequence[Finding],
                     path: str | Path) -> tuple[int, int]:
    """Rewrite a baseline at ``path`` to the current fingerprint version.

    Current ``findings`` that the old baseline suppresses are re-recorded
    under their version-2 fingerprints; stale allowances (nothing matches
    them any more) are dropped.  Returns ``(migrated, dropped)`` counts.
    """
    old = load_baseline(path)
    key = _key_fn(old)
    allowance = Counter(old)
    matched: list[Finding] = []
    for finding in findings:
        if allowance[key(finding)] > 0:
            allowance[key(finding)] -= 1
            matched.append(finding)
    write_baseline(matched, path)
    dropped = sum(v for v in allowance.values() if v > 0)
    return len(matched), dropped
