"""Baseline suppression — adopt the linter without fixing the world first.

A baseline file records the fingerprints of currently-accepted findings
(with a count per fingerprint, since the same violation can occur more
than once in a file).  ``repro lint --write-baseline`` snapshots the
current findings; later runs subtract the baseline and fail only on
*new* findings.  Fingerprints omit line numbers, so edits elsewhere in a
file do not invalidate the suppression.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from .findings import Finding
from .framework import AnalysisError

BASELINE_VERSION = 1

#: Default baseline location, relative to the working directory.
DEFAULT_BASELINE = ".reprolint.json"


def write_baseline(findings: Sequence[Finding], path: str | Path) -> int:
    """Snapshot ``findings`` as the accepted baseline; returns the count."""
    counts = Counter(f.fingerprint for f in findings)
    doc = {
        "version": BASELINE_VERSION,
        "fingerprints": dict(sorted(counts.items())),
    }
    Path(path).write_text(json.dumps(doc, indent=2) + "\n")
    return sum(counts.values())


def load_baseline(path: str | Path) -> Counter:
    """Load a baseline file into a fingerprint -> allowance counter."""
    try:
        doc = json.loads(Path(path).read_text())
    except OSError as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or "fingerprints" not in doc:
        raise AnalysisError(f"baseline {path} has no 'fingerprints' map")
    if doc.get("version") != BASELINE_VERSION:
        raise AnalysisError(
            f"baseline {path} has version {doc.get('version')!r}, "
            f"expected {BASELINE_VERSION}"
        )
    fingerprints = doc["fingerprints"]
    if not isinstance(fingerprints, dict):
        raise AnalysisError(f"baseline {path}: 'fingerprints' must be a map")
    return Counter({str(k): int(v) for k, v in fingerprints.items()})


def apply_baseline(findings: Sequence[Finding],
                   baseline: Counter) -> tuple[list[Finding], int]:
    """Split findings into (new, n_suppressed) against a baseline.

    Each fingerprint suppresses up to its recorded count of occurrences;
    findings beyond the allowance are treated as new.
    """
    allowance = Counter(baseline)
    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        if allowance[finding.fingerprint] > 0:
            allowance[finding.fingerprint] -= 1
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed
