"""The ``repro lint`` entry point (wired into :mod:`repro.cli`).

Runs every registered checker over the given paths, subtracts the
baseline when one exists, renders the report, and returns the process
exit code.  The contract is explicit so CI can tell findings apart from
analyzer crashes:

* :data:`LINT_EXIT_CLEAN` (0) — no unsuppressed findings;
* :data:`LINT_EXIT_FINDINGS` (1) — findings were reported;
* :data:`LINT_EXIT_INTERNAL` (2) — the analyzer itself failed (bad
  path, malformed policy/baseline, or an unexpected exception).
"""

from __future__ import annotations

import traceback
from pathlib import Path
from typing import Callable, Sequence

from ..errors import ReproError
from .baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    migrate_baseline as _migrate_baseline,
    write_baseline,
)
from .findings import Finding
from .framework import analyze_paths
from .reporters import format_json, format_text

#: ``repro lint`` exit codes (see module docstring).
LINT_EXIT_CLEAN = 0
LINT_EXIT_FINDINGS = 1
LINT_EXIT_INTERNAL = 2


def run_lint(
    paths: Sequence[str],
    *,
    output_format: str = "text",
    select: Sequence[str] | None = None,
    baseline_path: str = DEFAULT_BASELINE,
    update_baseline: bool = False,
    migrate_baseline: bool = False,
    echo: Callable[[str], None] = print,
) -> int:
    """Lint ``paths`` and report; see module docstring for the contract.

    Args:
        paths: files/directories to analyze (``repro lint`` defaults to
            ``src/repro``).
        output_format: ``"text"`` or ``"json"``.
        select: restrict to these rule ids (``None`` = all).
        baseline_path: baseline file; applied only if it exists, so a
            repo without a baseline just reports everything.
        update_baseline: snapshot current findings into
            ``baseline_path`` and exit 0 instead of reporting.
        migrate_baseline: rewrite an existing (possibly version-1)
            baseline to the current fingerprint format, keeping only
            allowances that still match a finding, and exit 0.
        echo: sink for the rendered report (tests capture it).
    """
    try:
        findings: list[Finding] = analyze_paths(paths, select=select)

        if update_baseline:
            count = write_baseline(findings, baseline_path)
            echo(f"wrote baseline with {count} finding(s) to "
                 f"{baseline_path}")
            return LINT_EXIT_CLEAN

        if migrate_baseline:
            migrated, dropped = _migrate_baseline(findings, baseline_path)
            echo(f"migrated baseline {baseline_path}: {migrated} "
                 f"finding(s) re-fingerprinted, {dropped} stale "
                 f"allowance(s) dropped")
            return LINT_EXIT_CLEAN

        suppressed = 0
        if baseline_path and Path(baseline_path).is_file():
            findings, suppressed = apply_baseline(
                findings, load_baseline(baseline_path)
            )

        render = format_json if output_format == "json" else format_text
        echo(render(findings, suppressed))
        return LINT_EXIT_FINDINGS if findings else LINT_EXIT_CLEAN
    except ReproError as exc:
        echo(f"lint: internal error: {exc}")
        return LINT_EXIT_INTERNAL
    except Exception:
        # an analyzer bug must never masquerade as a findings exit
        echo("lint: internal error:\n" + traceback.format_exc())
        return LINT_EXIT_INTERNAL
