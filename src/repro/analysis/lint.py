"""The ``repro lint`` entry point (wired into :mod:`repro.cli`).

Runs every registered checker over the given paths, subtracts the
baseline when one exists, renders the report, and returns the process
exit code: 0 when no unsuppressed findings remain, 1 otherwise.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Sequence

from .baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .findings import Finding
from .framework import analyze_paths
from .reporters import format_json, format_text


def run_lint(
    paths: Sequence[str],
    *,
    output_format: str = "text",
    select: Sequence[str] | None = None,
    baseline_path: str = DEFAULT_BASELINE,
    update_baseline: bool = False,
    echo: Callable[[str], None] = print,
) -> int:
    """Lint ``paths`` and report; see module docstring for the contract.

    Args:
        paths: files/directories to analyze (``repro lint`` defaults to
            ``src/repro``).
        output_format: ``"text"`` or ``"json"``.
        select: restrict to these rule ids (``None`` = all).
        baseline_path: baseline file; applied only if it exists, so a
            repo without a baseline just reports everything.
        update_baseline: snapshot current findings into
            ``baseline_path`` and exit 0 instead of reporting.
        echo: sink for the rendered report (tests capture it).
    """
    findings: list[Finding] = analyze_paths(paths, select=select)

    if update_baseline:
        count = write_baseline(findings, baseline_path)
        echo(f"wrote baseline with {count} finding(s) to {baseline_path}")
        return 0

    suppressed = 0
    if baseline_path and Path(baseline_path).is_file():
        findings, suppressed = apply_baseline(
            findings, load_baseline(baseline_path)
        )

    render = format_json if output_format == "json" else format_text
    echo(render(findings, suppressed))
    return 1 if findings else 0
