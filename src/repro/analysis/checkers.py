"""The repo-specific per-file rules.

* **RPR001 timing-discipline** — the telemetry layer (PR 1) is the one
  timing source for every performance claim; a hand-rolled
  ``time.perf_counter()`` block produces numbers no trace, manifest, or
  per-kernel summary ever sees.  Only :mod:`repro.telemetry` may touch
  the clock.
* **RPR002 rng-discipline** — the DSE results are only reproducible if
  every random draw flows from an injected, seeded
  ``np.random.Generator``.  The legacy global-state API
  (``np.random.seed`` + module-level draws) silently couples unrelated
  experiments.
* **RPR003 error-policy** — the library promises callers they can catch
  :class:`~repro.errors.ReproError` without swallowing programming
  errors; raising bare builtins breaks that, and a CLI ``main`` without
  a ``ReproError`` handler leaks raw tracebacks at users.
* **RPR005 contract-validation** — ``@contract`` strings are data; a
  typo in one silently disables the check it declares.  This pass
  validates their syntax, that declared parameters exist, and that
  stacked decorators do not contradict each other.
* **RPR006 process-discipline** — :mod:`repro.jobs` (PR 3) is the one
  process-spawning layer: its pool owns worker seeding, per-job
  timeouts, crash retries and telemetry merge.  A bare
  ``multiprocessing.Pool`` (or ``concurrent.futures`` executor)
  elsewhere gets none of that — unseeded workers, silent hangs, lost
  traces — so only ``repro.jobs`` may import those modules.
* **RPR007 dtype-discipline** — the fast frame pipeline (``repro.perf``)
  earns its speedup by keeping every per-pixel/per-voxel array float32;
  one stray default-dtype allocator or ``.astype(float)`` silently
  doubles bandwidth and erases it.  Hot-path modules (``repro/perf/*``
  and the kfusion kernels) must spell dtypes explicitly; deliberate
  float64 (the ICP solver) carries an inline ``# f64-ok: <reason>``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .contracts import ContractError, parse_contract
from .findings import Finding
from .framework import Checker, ModuleContext, register_checker

#: Clock calls that bypass the telemetry substrate (RPR001).
BANNED_CLOCKS = frozenset({
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
})

#: Legacy global-state numpy.random members (RPR002).  ``default_rng``,
#: ``Generator``, ``SeedSequence`` and the bit generators stay legal.
BANNED_NP_RANDOM = frozenset({
    "seed", "get_state", "set_state", "RandomState",
    "rand", "randn", "randint", "random_integers",
    "random", "random_sample", "ranf", "sample", "bytes",
    "choice", "shuffle", "permutation",
    "uniform", "normal", "standard_normal", "lognormal",
    "beta", "binomial", "exponential", "gamma", "geometric",
    "laplace", "poisson", "power", "rayleigh", "triangular",
    "vonmises", "weibull", "zipf", "multivariate_normal",
})

#: Builtin exceptions the library must not raise on public paths
#: (RPR003).  ``TypeError``/``AttributeError``/``NotImplementedError``
#: stay legal: they signal programming errors, which :class:`ReproError`
#: deliberately does not cover.
BANNED_RAISES = frozenset({
    "Exception", "BaseException",
    "ValueError", "RuntimeError",
    "KeyError", "IndexError", "LookupError",
    "OSError", "IOError",
    "ArithmeticError", "ZeroDivisionError",
    "StopIteration",
})


def _is_telemetry_module(ctx: ModuleContext) -> bool:
    return "telemetry" in ctx.path_parts


@register_checker
class TimingDisciplineChecker(Checker):
    """RPR001: wall-clock reads outside ``repro.telemetry``."""

    rule_id = "RPR001"
    title = ("timing-discipline: stdlib clock calls outside repro.telemetry "
             "(use telemetry.stage()/Tracer.span())")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _is_telemetry_module(ctx):
            return
        reported: set[tuple[int, str]] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if isinstance(node, ast.Name) and not isinstance(node.ctx,
                                                             ast.Load):
                continue
            dotted = ctx.resolve(node)
            if dotted in BANNED_CLOCKS:
                key = (node.lineno, dotted)
                if key in reported:
                    continue
                reported.add(key)
                yield ctx.finding(
                    node, self.rule_id,
                    f"{dotted} bypasses the telemetry clock; time this "
                    f"block with repro.telemetry.stage() or Tracer.span()",
                )


@register_checker
class RngDisciplineChecker(Checker):
    """RPR002: global-state numpy.random usage."""

    rule_id = "RPR002"
    title = ("rng-discipline: no np.random.seed / legacy module-level "
             "draws — inject a seeded np.random.Generator")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        reported: set[tuple[int, str]] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            dotted = ctx.resolve(node)
            if dotted is None:
                continue
            member = None
            if dotted.startswith("numpy.random."):
                member = dotted.split(".", 2)[2]
            if member is None or "." in member or (
                    member not in BANNED_NP_RANDOM):
                continue
            key = (node.lineno, dotted)
            if key in reported:
                continue
            reported.add(key)
            hint = ("seed a Generator once at the entry point"
                    if member in ("seed", "set_state", "get_state")
                    else "draw from an injected np.random.Generator")
            yield ctx.finding(
                node, self.rule_id,
                f"numpy.random.{member} uses hidden global RNG state, "
                f"breaking DSE reproducibility; {hint} "
                f"(np.random.default_rng(seed))",
            )


class _MainTracebackVisitor(ast.NodeVisitor):
    """Does this ``main`` contain a handler for ``ReproError``?"""

    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.handles_repro_error = False

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        types = []
        if isinstance(node.type, ast.Tuple):
            types = node.type.elts
        elif node.type is not None:
            types = [node.type]
        for t in types:
            dotted = self.ctx.resolve(t) or ""
            if dotted.split(".")[-1] == "ReproError":
                self.handles_repro_error = True
        self.generic_visit(node)


@register_checker
class ErrorPolicyChecker(Checker):
    """RPR003: bare builtin raises and traceback-leaking CLI mains."""

    rule_id = "RPR003"
    title = ("error-policy: raise the repro.errors hierarchy, not bare "
             "builtins; CLI main() must catch ReproError")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        local_classes = {
            n.name for n in ast.walk(ctx.tree) if isinstance(n, ast.ClassDef)
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise):
                yield from self._check_raise(ctx, node, local_classes)
        # The traceback rule applies to module-level CLI entry points only.
        for node in ctx.tree.body:
            if isinstance(node, ast.FunctionDef) and node.name == "main":
                yield from self._check_main(ctx, node)

    def _check_raise(self, ctx: ModuleContext, node: ast.Raise,
                     local_classes: set[str]) -> Iterator[Finding]:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if exc is None:  # bare ``raise`` re-raise: always fine
            return
        dotted = ctx.resolve(exc)
        if dotted in BANNED_RAISES and dotted not in local_classes:
            yield ctx.finding(
                node, self.rule_id,
                f"raise {dotted} from library code; raise a "
                f"repro.errors.ReproError subclass so callers can catch "
                f"library failures without masking bugs",
            )

    def _check_main(self, ctx: ModuleContext,
                    node: ast.FunctionDef) -> Iterator[Finding]:
        visitor = _MainTracebackVisitor(ctx)
        visitor.visit(node)
        if not visitor.handles_repro_error:
            yield ctx.finding(
                node, self.rule_id,
                "CLI entry point main() has no except ReproError handler "
                "and will leak raw tracebacks at users",
            )


#: Process-pool modules only :mod:`repro.jobs` may touch (RPR006).
BANNED_PROCESS_MODULES = ("multiprocessing", "concurrent.futures")

#: Thread/session lifecycle primitives (RPR006 serve-discipline arm):
#: spawning threads outside the two layers that own concurrent
#: lifecycles — :mod:`repro.jobs` (worker pool) and :mod:`repro.serve`
#: (the scheduler thread) — hides unsupervised concurrency from both.
#: Synchronisation primitives (``Lock``/``Condition``/``Event``/
#: ``local``) stay legal everywhere: guarding state is fine, *owning a
#: lifecycle* is the restricted act.
BANNED_THREAD_LIFECYCLE = frozenset({
    "threading.Thread", "threading.Timer",
    "_thread.start_new_thread",
})

#: Sync-primitive constructors the module-scope arm of RPR006 flags
#: outside :mod:`repro.jobs` / :mod:`repro.serve`: a module-level lock
#: is process-wide mutable state — it outlives every engine/pool
#: instance, aliases unrelated callers into one contention domain, and
#: is exactly what made ``loadgen._PACER`` shared across runs.  Inside
#: a class (or a function) the same constructors stay legal anywhere.
MODULE_SCOPE_SYNC = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Event", "threading.Semaphore",
    "threading.BoundedSemaphore", "threading.Barrier",
})


def _is_jobs_module(ctx: ModuleContext) -> bool:
    return "jobs" in ctx.path_parts


def _is_lifecycle_module(ctx: ModuleContext) -> bool:
    return "jobs" in ctx.path_parts or "serve" in ctx.path_parts


def _banned_process_module(module: str) -> str | None:
    """The banned root of ``module``, or ``None`` if it is allowed."""
    for banned in BANNED_PROCESS_MODULES:
        if module == banned or module.startswith(banned + "."):
            return banned
    return None


@register_checker
class ProcessDisciplineChecker(Checker):
    """RPR006: process-pool primitives outside ``repro.jobs``."""

    rule_id = "RPR006"
    title = ("process-discipline: no multiprocessing/concurrent.futures "
             "outside repro.jobs, no thread lifecycles or module-scope "
             "locks outside repro.jobs/repro.serve")

    _HINT = ("spawn work through repro.jobs (WorkerPool/JobRunner) so it "
             "gets seeded RNG streams, timeouts, retries and telemetry")

    _THREAD_HINT = ("session/thread lifecycles belong to repro.serve "
                    "(ServeEngine scheduler) or repro.jobs; elsewhere a "
                    "spawned thread escapes every budget, drop policy and "
                    "stats report")

    _MODULE_LOCK_HINT = ("a module-level sync primitive is process-wide "
                         "shared state aliasing every caller into one "
                         "contention domain; make it an instance attribute "
                         "or a local of the function that needs it")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self._check_process(ctx)
        yield from self._check_thread_lifecycle(ctx)
        yield from self._check_module_locks(ctx)

    def _check_process(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _is_jobs_module(ctx):
            return
        reported: set[int] = set()

        def flag(node: ast.AST, what: str) -> Iterator[Finding]:
            if node.lineno in reported:
                return
            reported.add(node.lineno)
            yield ctx.finding(node, self.rule_id,
                              f"{what} outside repro.jobs; {self._HINT}")

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    banned = _banned_process_module(alias.name)
                    if banned is not None:
                        yield from flag(node, f"import {alias.name}")
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if node.level:  # relative import: stays inside repro
                    continue
                banned = _banned_process_module(module)
                if banned is None and module == "concurrent":
                    if any(a.name == "futures" for a in node.names):
                        banned = "concurrent.futures"
                if banned is not None:
                    yield from flag(node, f"import from {module or banned}")
            elif isinstance(node, (ast.Attribute, ast.Name)):
                # import concurrent; concurrent.futures.ProcessPoolExecutor
                dotted = ctx.resolve(node)
                if dotted and _banned_process_module(dotted) and "." in dotted:
                    yield from flag(node, f"use of {dotted}")

    def _check_thread_lifecycle(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _is_lifecycle_module(ctx):
            return
        reported: set[tuple[int, str]] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            dotted = ctx.resolve(node)
            if dotted not in BANNED_THREAD_LIFECYCLE:
                continue
            key = (node.lineno, dotted)
            if key in reported:
                continue
            reported.add(key)
            yield ctx.finding(
                node, self.rule_id,
                f"{dotted} outside repro.jobs/repro.serve; "
                f"{self._THREAD_HINT}",
            )

    def _check_module_locks(self, ctx: ModuleContext) -> Iterator[Finding]:
        """lock-at-module-scope arm: flag module-level sync primitives."""
        if _is_lifecycle_module(ctx):
            return
        for stmt in ctx.tree.body:
            value = None
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            if not isinstance(value, ast.Call):
                continue
            dotted = ctx.resolve(value.func)
            if dotted not in MODULE_SCOPE_SYNC:
                continue
            yield ctx.finding(
                stmt, self.rule_id,
                f"module-scope {dotted}() outside repro.jobs/repro.serve; "
                f"{self._MODULE_LOCK_HINT}",
            )


def _contract_decorators(ctx: ModuleContext,
                         func: ast.FunctionDef) -> list[ast.Call]:
    calls = []
    for deco in func.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        dotted = ctx.resolve(deco.func) or ""
        if dotted.split(".")[-1] == "contract":
            calls.append(deco)
    return calls


@register_checker
class ContractSyntaxChecker(Checker):
    """RPR005: malformed or contradictory ``@contract`` declarations."""

    rule_id = "RPR005"
    title = ("contract-validation: @contract strings must parse, name real "
             "parameters, and not contradict each other")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(self, ctx: ModuleContext,
                        func: ast.FunctionDef) -> Iterator[Finding]:
        decos = _contract_decorators(ctx, func)
        if not decos:
            return
        args = func.args
        param_names = {
            a.arg
            for a in (args.posonlyargs + args.args + args.kwonlyargs)
        }
        if args.vararg:
            param_names.add(args.vararg.arg)
        if args.kwarg:
            param_names.add(args.kwarg.arg)
        declared: dict[str, str] = {}
        for deco in decos:
            if deco.args:
                yield ctx.finding(
                    deco, self.rule_id,
                    f"@contract on {func.name} takes keyword arguments "
                    f"only (param=\"dims:dtype\")",
                )
            for kw in deco.keywords:
                if kw.arg is None:  # **spread — opaque to static checking
                    yield ctx.finding(
                        deco, self.rule_id,
                        f"@contract on {func.name} uses **kwargs spread; "
                        f"declare contracts literally so they can be "
                        f"checked statically",
                    )
                    continue
                if not (isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, str)):
                    yield ctx.finding(
                        kw.value, self.rule_id,
                        f"@contract on {func.name}: {kw.arg} must be a "
                        f"string literal contract",
                    )
                    continue
                text = kw.value.value
                try:
                    parse_contract(text)
                except ContractError as exc:
                    yield ctx.finding(kw.value, self.rule_id,
                                      f"@contract on {func.name}: {exc}")
                    continue
                if kw.arg not in param_names:
                    yield ctx.finding(
                        kw.value, self.rule_id,
                        f"@contract on {func.name}: no parameter "
                        f"{kw.arg!r} in the function signature",
                    )
                prior = declared.get(kw.arg)
                if prior is not None and prior != text:
                    yield ctx.finding(
                        kw.value, self.rule_id,
                        f"@contract on {func.name}: parameter {kw.arg!r} "
                        f"declared both {prior!r} and {text!r} "
                        f"(contradictory contracts)",
                    )
                declared[kw.arg] = text


#: Hot-path kfusion modules held to float32 discipline (RPR007), plus
#: everything under ``repro/perf``.
HOT_PATH_KFUSION_MODULES = frozenset({
    "pipeline", "preprocessing", "raycast", "tracking",
    "integration", "volume", "render",
})

#: numpy allocators whose *default* dtype is float64.
DEFAULT_F64_ALLOCATORS = frozenset({
    "numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full",
})

#: dtype spellings that request float64.
F64_DTYPE_STRINGS = frozenset({"float64", "f8", "d", "double"})
F64_DTYPE_NAMES = frozenset({"float", "numpy.float64", "numpy.double"})

#: Inline waiver for a deliberate float64 (e.g. the ICP normal-equation
#: solver, which is float64 *by design* — see DESIGN.md S17).
F64_WAIVER = "# f64-ok:"


def _is_hot_path_module(ctx: ModuleContext) -> bool:
    parts = ctx.path_parts
    if "perf" in parts:
        return True
    if "kfusion" in parts:
        stem = parts[-1].rsplit(".", 1)[0]
        return stem in HOT_PATH_KFUSION_MODULES
    return False


@register_checker
class DtypeDisciplineChecker(Checker):
    """RPR007: float64 temporaries in hot-path per-frame kernels."""

    rule_id = "RPR007"
    title = ("dtype-discipline: no float64 temporaries in kfusion/perf "
             "hot paths — allocate float32 (waive deliberate float64 "
             "with '# f64-ok: <reason>')")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _is_hot_path_module(ctx):
            return
        reported: set[tuple[int, int]] = set()

        def waived(node: ast.AST) -> bool:
            line = ctx.lines[node.lineno - 1] if (
                0 < node.lineno <= len(ctx.lines)) else ""
            return F64_WAIVER in line

        def flag(node: ast.AST, message: str) -> Iterator[Finding]:
            key = (node.lineno, getattr(node, "col_offset", 0))
            if key in reported or waived(node):
                return
            reported.add(key)
            yield ctx.finding(node, self.rule_id, message)

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve(node.func)

            if dotted in DEFAULT_F64_ALLOCATORS:
                dtype_kw = next((kw for kw in node.keywords
                                 if kw.arg == "dtype"), None)
                if dtype_kw is None:
                    yield from flag(
                        node,
                        f"{dotted}() without dtype allocates float64 in a "
                        f"hot-path kernel; pass dtype=np.float32 (or take "
                        f"a workspace buffer)",
                    )
                    continue

            for kw in node.keywords:
                if kw.arg == "dtype" and _is_f64_dtype(ctx, kw.value):
                    yield from flag(
                        kw.value,
                        "explicit float64 dtype in a hot-path kernel; use "
                        "np.float32 (float64 belongs in the solver only)",
                    )

            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "astype" and node.args
                    and _is_f64_dtype(ctx, node.args[0])):
                yield from flag(
                    node,
                    ".astype(float64) materialises a float64 copy in a "
                    "hot-path kernel; cast to np.float32",
                )


def _is_f64_dtype(ctx: ModuleContext, node: ast.AST) -> bool:
    """Does this dtype expression request float64?"""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in F64_DTYPE_STRINGS
    dotted = ctx.resolve(node)
    return dotted in F64_DTYPE_NAMES
