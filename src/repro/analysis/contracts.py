"""Lightweight array contracts for geometry/pipeline entry points.

A contract string declares an ndarray parameter's shape and element
kind, ``"<dims>:<dtype>"``::

    @contract(depth="H,W:f64", pose="4,4:f64")
    def integrate(volume, depth, camera, pose, mu): ...

Grammar:

* dims — comma-separated tokens: an integer literal (exact size), an
  identifier (a symbolic size, bound on first use and required to match
  on every later use *within one call*), or a leading ``...`` (any
  number of leading dimensions, e.g. ``"...,3:f64"`` for ``(..., 3)``
  point arrays).
* dtype — ``f32``/``f64``/``f`` (floating), ``i32``/``i64``/``i``
  (integer), ``u8``/``u`` (unsigned), ``b``/``bool``.  At runtime only
  the *kind* is enforced (a float32 array satisfies ``f64``) and safe
  widening is allowed (ints satisfy a float contract — every decorated
  function coerces with ``np.asarray(..., dtype=float)`` anyway); the
  declared width documents intent and is validated statically by RPR005.

The decorator checks only arguments that arrive as ``np.ndarray`` —
lists and ``None`` pass through untouched, since coercion is the
callee's business.  Violations raise :class:`ContractError`
(a :class:`~repro.errors.ReproError`).  The per-call cost is a few dict
operations and shape comparisons, negligible next to any kernel math.

The RPR005 static pass (:mod:`repro.analysis.checkers`) validates
contract-string syntax, rejects parameters that do not exist in the
decorated function's signature, and flags contradictory declarations of
the same parameter across stacked ``@contract`` decorators.
"""

from __future__ import annotations

import functools
import inspect
import re
from dataclasses import dataclass

import numpy as np

from ..errors import ReproError


class ContractError(ReproError):
    """An array argument violated its declared shape/dtype contract,
    or a contract declaration itself is malformed."""


#: declared dtype token -> numpy dtype *kind* it requires.
DTYPE_KINDS = {
    "f32": "f", "f64": "f", "f": "f",
    "i32": "i", "i64": "i", "i": "i",
    "u8": "u", "u": "u",
    "b": "b", "bool": "b",
}

#: declared kind -> actual array kinds accepted (safe widening only).
_COMPATIBLE = {
    "f": ("f", "i", "u", "b"),
    "i": ("i", "u", "b"),
    "u": ("u", "b"),
    "b": ("b",),
}

_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

#: alias dtype token -> the canonical token :func:`format_contract` emits.
_CANONICAL_DTYPE = {"b": "bool"}


@dataclass(frozen=True)
class ArraySpec:
    """A parsed contract string.

    Attributes:
        dims: shape tokens — ints (exact), strings (symbolic).
        kind: required numpy dtype kind, or ``None`` when unconstrained.
        text: the original contract string (for messages and RPR005).
        ellipsis_leading: the contract began with ``...`` — ``dims``
            constrain only the trailing dimensions.
        dtype: the canonical declared dtype token (``"f32"``, ``"bool"``,
            ...), or ``None`` when the contract declares no dtype.  Two
            alias spellings of the same token (``b``/``bool``) share one
            canonical form.
    """

    dims: tuple
    kind: str | None
    text: str
    ellipsis_leading: bool = False
    dtype: str | None = None


def parse_contract(text: str) -> ArraySpec:
    """Parse ``"H,W:f64"`` into an :class:`ArraySpec`; raise on bad syntax."""
    if not isinstance(text, str) or not text.strip():
        raise ContractError(f"contract must be a non-empty string, got {text!r}")
    dims_part, sep, dtype_part = text.partition(":")
    kind = dtype = None
    if sep:
        dtype_part = dtype_part.strip()
        if dtype_part not in DTYPE_KINDS:
            raise ContractError(
                f"contract {text!r}: unknown dtype {dtype_part!r} "
                f"(expected one of {sorted(DTYPE_KINDS)})"
            )
        kind = DTYPE_KINDS[dtype_part]
        dtype = _CANONICAL_DTYPE.get(dtype_part, dtype_part)
    tokens = [t.strip() for t in dims_part.split(",")]
    if any(not t for t in tokens):
        raise ContractError(f"contract {text!r}: empty dimension token")
    dims: list = []
    ellipsis_leading = False
    for i, tok in enumerate(tokens):
        if tok == "...":
            if i != 0:
                raise ContractError(
                    f"contract {text!r}: '...' is only allowed as the "
                    f"leading dimension"
                )
            ellipsis_leading = True
        elif tok.isdigit():
            size = int(tok)
            if size <= 0:
                raise ContractError(
                    f"contract {text!r}: dimension sizes must be positive"
                )
            dims.append(size)
        elif _IDENT_RE.match(tok):
            dims.append(tok)
        else:
            raise ContractError(
                f"contract {text!r}: bad dimension token {tok!r} "
                f"(expected int, identifier, or leading '...')"
            )
    if ellipsis_leading and not dims:
        raise ContractError(f"contract {text!r}: '...' alone is not a shape")
    return ArraySpec(dims=tuple(dims), kind=kind, text=text,
                     ellipsis_leading=ellipsis_leading, dtype=dtype)


def format_contract(spec: ArraySpec) -> str:
    """The canonical spelling of a parsed contract.

    ``parse_contract(format_contract(s))`` is semantically equal to ``s``
    (:func:`contracts_equal`), and formatting is idempotent — whitespace
    and dtype-alias variants collapse onto one spelling, which is what
    the graph compiler compares.
    """
    tokens = (["..."] if spec.ellipsis_leading else []) + [
        str(d) for d in spec.dims
    ]
    out = ",".join(tokens)
    if spec.dtype is not None:
        out += f":{spec.dtype}"
    return out


def contracts_equal(a: ArraySpec, b: ArraySpec) -> bool:
    """Semantic equality: same dims, same ellipsis, same canonical dtype.

    Spelling differences (whitespace, ``b`` vs ``bool``) do not count;
    declared width does (``f32`` != ``f64`` — two ends of one wire must
    agree on what the array *is*).
    """
    return (a.dims == b.dims
            and a.ellipsis_leading == b.ellipsis_leading
            and a.dtype == b.dtype)


def _check_array(func_name: str, arg_name: str, spec: ArraySpec,
                 value: np.ndarray, bindings: dict) -> None:
    shape = value.shape
    if spec.ellipsis_leading:
        if len(shape) < len(spec.dims):
            raise ContractError(
                f"{func_name}({arg_name}): expected shape (..., "
                f"{', '.join(map(str, spec.dims))}), got {shape}"
            )
        tail = shape[len(shape) - len(spec.dims):]
    else:
        if len(shape) != len(spec.dims):
            raise ContractError(
                f"{func_name}({arg_name}): expected {len(spec.dims)} "
                f"dimensions per contract {spec.text!r}, got shape {shape}"
            )
        tail = shape
    for declared, actual in zip(spec.dims, tail):
        if isinstance(declared, int):
            if actual != declared:
                raise ContractError(
                    f"{func_name}({arg_name}): dimension {declared} "
                    f"declared by contract {spec.text!r}, got shape {shape}"
                )
        else:
            bound = bindings.setdefault(declared, actual)
            if bound != actual:
                raise ContractError(
                    f"{func_name}({arg_name}): symbol {declared!r} already "
                    f"bound to {bound} but got {actual} (shape {shape})"
                )
    if spec.kind is not None and value.dtype.kind not in _COMPATIBLE[spec.kind]:
        raise ContractError(
            f"{func_name}({arg_name}): dtype kind {value.dtype.kind!r} "
            f"({value.dtype}) incompatible with contract {spec.text!r}"
        )


def contract(**specs: str):
    """Declare array contracts on a function's parameters (by keyword).

    Parses every contract string at decoration time (malformed contracts
    fail the import, not the millionth call), verifies the named
    parameters exist, and attaches the merged declarations as
    ``__repro_contracts__`` for introspection and the RPR005 checker.
    """
    parsed = {name: parse_contract(text) for name, text in specs.items()}

    def decorate(func):
        sig = inspect.signature(func)
        positions: dict[str, int] = {}
        for i, (pname, param) in enumerate(sig.parameters.items()):
            if param.kind in (param.POSITIONAL_ONLY,
                              param.POSITIONAL_OR_KEYWORD):
                positions[pname] = i
        for name in parsed:
            if name not in sig.parameters:
                raise ContractError(
                    f"@contract on {func.__qualname__}: no parameter "
                    f"{name!r} in signature {sig}"
                )
        merged = dict(getattr(func, "__repro_contracts__", {}))
        for name, spec in parsed.items():
            prior = merged.get(name)
            if prior is not None and prior.text != spec.text:
                raise ContractError(
                    f"@contract on {func.__qualname__}: parameter {name!r} "
                    f"declared both {prior.text!r} and {spec.text!r}"
                )
            merged[name] = spec

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            bindings: dict[str, int] = {}
            for name, spec in parsed.items():
                idx = positions.get(name)
                if idx is not None and idx < len(args):
                    value = args[idx]
                elif name in kwargs:
                    value = kwargs[name]
                else:
                    continue
                if isinstance(value, np.ndarray):
                    _check_array(func.__qualname__, name, spec, value,
                                 bindings)
            return func(*args, **kwargs)

        wrapper.__repro_contracts__ = merged
        return wrapper

    return decorate
