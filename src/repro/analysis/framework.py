"""The static-analysis framework: checker registry and driver.

Checkers come in two shapes:

* :class:`Checker` — per-file AST passes.  Each gets a
  :class:`ModuleContext` (parsed tree, source lines, import-alias map)
  and yields :class:`~repro.analysis.findings.Finding` objects.
* :class:`ProjectChecker` — cross-module passes that see *all* analyzed
  files at once (e.g. RPR004's design-space/consumer consistency check).

:func:`analyze_paths` is the driver ``repro lint`` uses: collect the
``.py`` files under the given paths, parse each once, run every
registered checker, honour ``# noqa`` / ``# noqa: RPR001`` line
suppressions, and return the sorted findings.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..errors import ReproError
from .findings import Finding, Severity


class AnalysisError(ReproError):
    """The analyzer itself was misused (bad path, bad rule selection...)."""


#: Content-addressed :class:`ModuleContext` memo: parsing is the
#: dominant fixed cost of every analysis entry point, and one tool run
#: routinely wants the same tree several times (``repro races check``
#: builds the concurrency state, then ``run_lint`` re-walks the same
#: files; test suites drive ``analyze_paths`` repeatedly).  Keyed by
#: path + source hash, so an edited file can never serve a stale tree.
_AST_CACHE: dict[str, "ModuleContext"] = {}

def parse_cached(source: str, path: str) -> "ModuleContext":
    """Parse via the content-addressed memo (see :data:`_AST_CACHE`).

    Reused contexts keep whatever whole-program state (arch project
    state, concurrency analysis) an earlier run attached; those caches
    key themselves on the exact context set (and policy) they were
    built from, so a run over a different file set recomputes rather
    than trusting a stale attachment.
    """
    key = hashlib.sha1(
        path.encode() + b"\0" + source.encode()).hexdigest()
    ctx = _AST_CACHE.get(key)
    if ctx is None:
        ctx = ModuleContext.parse(source, path)
        _AST_CACHE[key] = ctx
    return ctx


#: Rule id reported for files the parser rejects.
PARSE_RULE = "RPR000"

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<rules>[A-Z0-9 ,]+))?", re.IGNORECASE)


def _collect_import_aliases(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted path they were imported as.

    ``import numpy as np``           -> ``{"np": "numpy"}``
    ``from numpy import random``     -> ``{"random": "numpy.random"}``
    ``from time import perf_counter``-> ``{"perf_counter": "time.perf_counter"}``

    Relative imports keep their leading dots so checkers can still match
    suffixes (``from ..errors import ReproError`` -> ``..errors.ReproError``).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            module = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{module}.{alias.name}" if module else alias.name
                )
    return aliases


def dotted_name(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Resolve a Name/Attribute chain to a dotted path through the aliases.

    Returns ``None`` for expressions that are not plain attribute chains
    (calls, subscripts, ...).  An un-imported bare name resolves to
    itself, which is how builtin exception names are matched.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


@dataclass
class ModuleContext:
    """Everything a per-file checker needs about one module."""

    path: str
    tree: ast.Module
    source: str
    lines: list[str] = field(default_factory=list)
    aliases: dict[str, str] = field(default_factory=dict)
    _symbol_spans: list[tuple[int, int, str]] | None = field(
        default=None, repr=False)

    @classmethod
    def parse(cls, source: str, path: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            tree=tree,
            source=source,
            lines=source.splitlines(),
            aliases=_collect_import_aliases(tree),
        )

    @property
    def path_parts(self) -> tuple[str, ...]:
        return Path(self.path).parts

    def resolve(self, node: ast.AST) -> str | None:
        return dotted_name(node, self.aliases)

    def symbol_at(self, line: int) -> str:
        """Qualified name of the innermost def/class enclosing ``line``.

        ``""`` at module level.  Used to anchor version-2 baseline
        fingerprints on the enclosing symbol instead of line numbers.
        """
        if self._symbol_spans is None:
            spans: list[tuple[int, int, str]] = []

            def walk(node: ast.AST, prefix: str) -> None:
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.ClassDef)):
                        qual = (f"{prefix}.{child.name}" if prefix
                                else child.name)
                        spans.append((child.lineno,
                                      child.end_lineno or child.lineno,
                                      qual))
                        walk(child, qual)
                    else:
                        walk(child, prefix)

            walk(self.tree, "")
            self._symbol_spans = spans
        best = ""
        best_span = None
        for start, end, qual in self._symbol_spans:
            if start <= line <= end:
                span = end - start
                if best_span is None or span <= best_span:
                    best, best_span = qual, span
        return best

    def finding(self, node: ast.AST, rule_id: str, message: str,
                severity: Severity = Severity.ERROR) -> Finding:
        line = getattr(node, "lineno", 1)
        content = (self.lines[line - 1].strip()
                   if 1 <= line <= len(self.lines) else "")
        return Finding(
            path=self.path,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
            severity=severity,
            symbol=self.symbol_at(line),
            content=content,
        )


class Checker:
    """Base class for per-file AST checkers."""

    rule_id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectChecker:
    """Base class for cross-module checkers over the whole file set."""

    rule_id: str = ""
    title: str = ""

    def applies(self, contexts: Sequence[ModuleContext]) -> bool:
        raise NotImplementedError

    def check_project(self, contexts: Sequence[ModuleContext]) -> Iterator[Finding]:
        raise NotImplementedError


_FILE_CHECKERS: dict[str, type[Checker]] = {}
_PROJECT_CHECKERS: dict[str, type[ProjectChecker]] = {}


def register_checker(cls):
    """Class decorator adding a checker to the registry (keyed by rule id)."""
    if not cls.rule_id:
        raise AnalysisError(f"checker {cls.__name__} declares no rule_id")
    registry = (_PROJECT_CHECKERS if issubclass(cls, ProjectChecker)
                else _FILE_CHECKERS)
    if cls.rule_id in registry:
        raise AnalysisError(f"duplicate checker for rule {cls.rule_id}")
    registry[cls.rule_id] = cls
    return cls


def rule_catalogue() -> dict[str, str]:
    """``{rule_id: title}`` for every registered rule, sorted by id."""
    out = {rid: cls.title for rid, cls in _FILE_CHECKERS.items()}
    out.update({rid: cls.title for rid, cls in _PROJECT_CHECKERS.items()})
    return dict(sorted(out.items()))


def _selected(select: Iterable[str] | None) -> set[str] | None:
    if select is None:
        return None
    ids = {s.strip().upper() for s in select if s.strip()}
    if not ids:
        return None
    known = set(_FILE_CHECKERS) | set(_PROJECT_CHECKERS) | {PARSE_RULE}
    unknown = ids - known
    if unknown:
        raise AnalysisError(
            f"unknown rule ids {sorted(unknown)}; known: {sorted(known)}"
        )
    return ids


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    out: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates = sorted(p.rglob("*.py"))
        elif p.is_file():
            candidates = [p]
        else:
            raise AnalysisError(f"no such file or directory: {raw}")
        for c in candidates:
            if c not in seen:
                seen.add(c)
                out.append(c)
    return out


def _noqa_rules(line: str) -> set[str] | None:
    """Rules suppressed by a ``# noqa`` comment on ``line``.

    Returns ``None`` when there is no noqa, an empty set for a blanket
    ``# noqa`` (suppress everything), else the listed rule ids.
    """
    m = _NOQA_RE.search(line)
    if m is None:
        return None
    rules = m.group("rules")
    if not rules:
        return set()
    return {r.strip().upper() for r in rules.replace(",", " ").split()}


def _suppressed(finding: Finding, lines: list[str]) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    rules = _noqa_rules(lines[finding.line - 1])
    if rules is None:
        return False
    return not rules or finding.rule_id in rules


def analyze_source(source: str, path: str = "<string>",
                   select: Iterable[str] | None = None) -> list[Finding]:
    """Run the per-file checkers over one source string (test/tool entry)."""
    wanted = _selected(select)
    try:
        ctx = ModuleContext.parse(source, path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1,
                        col=(exc.offset or 0) or 1, rule_id=PARSE_RULE,
                        message=f"syntax error: {exc.msg}")]
    findings: list[Finding] = []
    for rule_id, cls in _FILE_CHECKERS.items():
        if wanted is not None and rule_id not in wanted:
            continue
        findings.extend(cls().check(ctx))
    findings = [f for f in findings if not _suppressed(f, ctx.lines)]
    return sorted(findings, key=Finding.sort_key)


def analyze_paths(paths: Sequence[str | Path],
                  select: Iterable[str] | None = None) -> list[Finding]:
    """Analyze every ``.py`` file under ``paths`` with all registered rules."""
    wanted = _selected(select)
    findings: list[Finding] = []
    contexts: list[ModuleContext] = []
    lines_by_path: dict[str, list[str]] = {}
    for file in iter_python_files(paths):
        path = str(file)
        try:
            source = file.read_text()
        except OSError as exc:
            raise AnalysisError(f"cannot read {path}: {exc}") from exc
        try:
            ctx = parse_cached(source, path)
        except SyntaxError as exc:
            findings.append(Finding(
                path=path, line=exc.lineno or 1, col=(exc.offset or 0) or 1,
                rule_id=PARSE_RULE, message=f"syntax error: {exc.msg}",
            ))
            continue
        contexts.append(ctx)
        lines_by_path[path] = ctx.lines

    for ctx in contexts:
        for rule_id, cls in _FILE_CHECKERS.items():
            if wanted is not None and rule_id not in wanted:
                continue
            findings.extend(cls().check(ctx))

    for rule_id, cls in _PROJECT_CHECKERS.items():
        if wanted is not None and rule_id not in wanted:
            continue
        checker = cls()
        if checker.applies(contexts):
            findings.extend(checker.check_project(contexts))

    findings = [
        f for f in findings
        if not _suppressed(f, lines_by_path.get(f.path, []))
    ]
    return sorted(findings, key=Finding.sort_key)
