"""Static dataflow verification for stage graphs (``repro dataflow``).

The graph compiler (:mod:`repro.graph.compiler`, DESIGN.md S19) proves a
pipeline's *wiring*; this module proves its *dataflow* — statically, on
every registered graph definition, without executing a frame:

=======  ==============================================================
RPR011   shape-dtype-unification: every port contract parses under the
         :mod:`repro.analysis.contracts` grammar and the symbolic dims
         (``H``, ``W``, ``r``, ``N``...) unify along edges across the
         whole graph; an unsatisfiable labeling reports the full
         constraint chain that forces the conflict
RPR012   kernel-contract-consistency: each stage's port contracts match
         the ``@contract`` declarations of the kernel functions the
         stage body calls, resolved through the static call graph and
         the :class:`~repro.perf.KernelBackend` slot machinery — a
         fast-backend kernel whose declared shape drifts from its graph
         port is a blocking finding
RPR013   arena-liveness: the declared arena regions (writer stage,
         reader stages, cross-frame survival) are consistent with the
         deterministic schedule and the buffer names the reachable
         kernels actually touch — use-after-release, overlapping-
         lifetime writes, and dead budget are findings
=======  ==============================================================

Port contracts extend the array-contract grammar with a tag::

    tag                     an opaque value (``"track.converged"``)
    tag(H,W:f32)            an array of that shape/dtype
    tag([H,W,3:f32])        a pyramid (list of arrays); the spec
                            describes the finest level

Symbolic dims are scoped to one *node*: ``H`` in two ports of the same
node is the same unknown, ``H`` in two different nodes is related only
when an edge (or a chain of edges) connects them.  Unification is a
union-find over ``(node, symbol)`` variables and integer constants, with
every union remembering the edge that caused it so a conflict can be
explained as the chain of edges that forces two unequal constants
together.

Layering: this module is pure — it never imports :mod:`repro.graph`.
The CLI (:mod:`repro.cli`) collects the registered graph definitions and
passes them in as :class:`GraphUnderCheck` records whose ``spec`` /
``stages`` members are duck-typed (anything with the
:class:`~repro.graph.GraphSpec` / :class:`~repro.graph.StageSpec` shape
works, which is also what the unit tests exploit).
"""

from __future__ import annotations

import ast
import re
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from .callgraph import CallGraph, build_callgraph, iter_own_nodes
from .consistency import (
    BACKEND_SLOTS,
    extract_contract_decls,
    extract_kernel_backends,
    resolve_backend_kernel,
)
from .contracts import ArraySpec, ContractError, format_contract, parse_contract
from .findings import Finding, Severity
from .framework import ModuleContext, _suppressed

#: Rule ids this verifier owns.
RULE_UNIFICATION = "RPR011"
RULE_KERNEL_CONTRACTS = "RPR012"
RULE_ARENA_LIVENESS = "RPR013"

#: Suffix locating the kernel-backend registry module among the contexts.
_REGISTRY_SUFFIX = ("perf", "registry.py")

_TAG_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*$")


# -- the port-contract grammar ----------------------------------------------

@dataclass(frozen=True)
class PortContract:
    """A parsed port contract: a tag, optionally carrying an array spec.

    Attributes:
        tag: the dotted value tag (``"depth.map"``).
        spec: the array shape/dtype, or ``None`` for an opaque tag.
        pyramid: the port carries a *list* of arrays (``tag([...])``);
            ``spec`` then describes the finest level.
        text: the original contract string.
    """

    tag: str
    spec: ArraySpec | None
    pyramid: bool
    text: str


def parse_port_contract(text: str) -> PortContract:
    """Parse ``"tag"`` / ``"tag(H,W:f32)"`` / ``"tag([H,W,3:f32])"``."""
    if not isinstance(text, str) or not text.strip():
        raise ContractError(
            f"port contract must be a non-empty string, got {text!r}"
        )
    s = text.strip()
    spec = None
    pyramid = False
    if s.endswith(")"):
        open_paren = s.find("(")
        if open_paren < 0:
            raise ContractError(
                f"port contract {text!r}: ')' without a matching '('"
            )
        inner = s[open_paren + 1:-1].strip()
        s = s[:open_paren].strip()
        if inner.startswith("[") and inner.endswith("]"):
            pyramid = True
            inner = inner[1:-1].strip()
        if not inner:
            raise ContractError(
                f"port contract {text!r}: empty array spec"
            )
        spec = parse_contract(inner)
    if not _TAG_RE.match(s):
        raise ContractError(
            f"port contract {text!r}: bad tag {s!r} (expected dotted "
            f"identifiers, e.g. 'depth.map')"
        )
    return PortContract(tag=s, spec=spec, pyramid=pyramid, text=text)


def format_port_contract(pc: PortContract) -> str:
    """Canonical spelling (idempotent; whitespace/alias variants collapse)."""
    if pc.spec is None:
        return pc.tag
    inner = format_contract(pc.spec)
    return f"{pc.tag}([{inner}])" if pc.pyramid else f"{pc.tag}({inner})"


def port_contract_mismatch(src: PortContract,
                           dst: PortContract) -> str | None:
    """Why two contracts cannot share an edge, or ``None`` if they can.

    Semantic comparison, not spelling: whitespace and dtype-alias
    variants are equal, and a symbolic dim is compatible with anything
    in its position (``repro dataflow check`` unifies symbols across the
    whole graph — RPR011 — which a single edge cannot).  Everything
    declared concretely must agree: tag, pyramid-ness, rank, dtype, and
    integer dims.
    """
    if src.tag != dst.tag:
        return f"tag {src.tag!r} != {dst.tag!r}"
    if (src.spec is None) != (dst.spec is None):
        return ("one end declares an array spec, the other is an "
                "opaque tag")
    if src.spec is None or dst.spec is None:
        return None
    if src.pyramid != dst.pyramid:
        return "one end is a pyramid ([...]), the other a single array"
    a, b = src.spec, dst.spec
    if a.ellipsis_leading != b.ellipsis_leading:
        return "leading '...' differs"
    if len(a.dims) != len(b.dims):
        return f"rank {len(a.dims)} != {len(b.dims)}"
    if a.dtype != b.dtype:
        return f"dtype {a.dtype or 'any'} != {b.dtype or 'any'}"
    for i, (x, y) in enumerate(zip(a.dims, b.dims)):
        if isinstance(x, int) and isinstance(y, int) and x != y:
            return f"dim {i}: {x} != {y}"
    return None


# -- graph inputs ------------------------------------------------------------

@dataclass
class GraphUnderCheck:
    """One registered graph definition handed to the verifier.

    Attributes:
        spec: a :class:`~repro.graph.GraphSpec`-shaped object
            (``name``/``nodes``/``edges``, optionally ``regions``).
        stages: node name -> :class:`~repro.graph.StageSpec`-shaped
            object (``inputs``/``outputs`` ports, ``run``,
            ``workspace_need``).
        origin: file path findings are anchored to (the graph
            definition module).
        body_qnames: node name -> qualified name of the stage body in
            the call graph; derived from ``stage.run`` when omitted.
        refs_by_node: pre-extracted arena buffer references (tests);
            derived from the call graph when omitted.
    """

    spec: Any
    stages: dict[str, Any]
    origin: str
    body_qnames: dict[str, str] | None = None
    refs_by_node: dict[str, list["BufferRef"]] | None = None


def _ports(stage) -> list:
    return list(stage.inputs) + list(stage.outputs)


def _finding(graph: GraphUnderCheck, rule: str, message: str,
             severity: Severity = Severity.ERROR, line: int = 1) -> Finding:
    return Finding(path=graph.origin, line=line, col=1, rule_id=rule,
                   message=message, severity=severity)


def _parse_graph_ports(
    graph: GraphUnderCheck, findings: list[Finding],
) -> dict[tuple[str, str], PortContract]:
    """Parse every port contract; unparsable ones become RPR011 findings."""
    parsed: dict[tuple[str, str], PortContract] = {}
    for node, stage in graph.stages.items():
        for port in _ports(stage):
            try:
                parsed[(node, port.name)] = parse_port_contract(port.contract)
            except ContractError as exc:
                findings.append(_finding(
                    graph, RULE_UNIFICATION,
                    f"graph {graph.spec.name!r}: port {node}.{port.name}: "
                    f"{exc}",
                ))
    return parsed


# -- RPR011: symbolic dim unification ----------------------------------------

class _Unifier:
    """Union-find over dim terms, remembering why each union happened.

    Terms are ``("var", node, symbol)`` for symbolic dims (scoped per
    node — every use of ``H`` within one node is the same unknown) and
    ``("const", node, port, index, value)`` for integer dims (one term
    per occurrence, so a conflict can name both declaration sites).
    """

    def __init__(self):
        self._parent: dict[tuple, tuple] = {}
        self._value: dict[tuple, tuple[int, tuple]] = {}  # root -> (v, term)
        #: explanation graph: term -> [(other term, reason)]
        self._why: dict[tuple, list[tuple[tuple, str]]] = {}

    def _add(self, term: tuple) -> None:
        if term not in self._parent:
            self._parent[term] = term
            if term[0] == "const":
                self._value[term] = (term[4], term)

    def find(self, term: tuple) -> tuple:
        self._add(term)
        root = term
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[term] != root:  # path compression
            self._parent[term], term = root, self._parent[term]
        return root

    def union(self, a: tuple, b: tuple, reason: str) -> tuple | None:
        """Merge; on constant conflict return ``(va, ta, vb, tb)``."""
        ra, rb = self.find(a), self.find(b)
        self._why.setdefault(a, []).append((b, reason))
        self._why.setdefault(b, []).append((a, reason))
        if ra == rb:
            return None
        va, vb = self._value.get(ra), self._value.get(rb)
        if va is not None and vb is not None and va[0] != vb[0]:
            return (va[0], va[1], vb[0], vb[1])
        self._parent[ra] = rb
        if va is not None:
            self._value[rb] = va
        return None

    def value_of(self, term: tuple) -> int | None:
        """The constant this term is pinned to, if any."""
        got = self._value.get(self.find(term))
        return None if got is None else got[0]

    def explain(self, start: tuple, goal: tuple) -> list[str]:
        """Shortest chain of reasons connecting two terms (BFS)."""
        prev: dict[tuple, tuple[tuple, str]] = {start: (start, "")}
        queue = deque([start])
        while queue:
            term = queue.popleft()
            if term == goal:
                break
            for other, reason in self._why.get(term, ()):
                if other not in prev:
                    prev[other] = (term, reason)
                    queue.append(other)
        if goal not in prev:
            return []
        chain: list[str] = []
        term = goal
        while term != start:
            term, reason = prev[term]
            chain.append(reason)
        chain.reverse()
        # A reason repeats when several dims of one edge join the chain.
        seen: set[str] = set()
        return [r for r in chain if not (r in seen or seen.add(r))]


def _dim_term(node: str, port: str, index: int, token) -> tuple:
    if isinstance(token, int):
        return ("const", node, port, index, token)
    return ("var", node, token)


def _term_label(term: tuple) -> str:
    if term[0] == "const":
        return f"{term[1]}.{term[2]} dim {term[3]}"
    return f"{term[1]}:{term[2]}"


def unify_graph(graph: GraphUnderCheck) -> list[Finding]:
    """RPR011: parse every port contract and unify dims along all edges."""
    findings: list[Finding] = []
    parsed = _parse_graph_ports(graph, findings)
    name = graph.spec.name
    unifier = _Unifier()
    # Seed every port's dims so self-consistent constants are recorded
    # even for ports no edge touches.
    for (node, port), pc in parsed.items():
        if pc.spec is None:
            continue
        for i, tok in enumerate(pc.spec.dims):
            unifier.find(_dim_term(node, port, i, tok))
    reported: set[frozenset] = set()
    for edge in graph.spec.edges:
        src = parsed.get((edge.src, edge.src_port))
        dst = parsed.get((edge.dst, edge.dst_port))
        if src is None or dst is None:
            continue  # unparsable end already reported
        mismatch = port_contract_mismatch(src, dst)
        if mismatch is not None:
            findings.append(_finding(
                graph, RULE_UNIFICATION,
                f"graph {name!r}: edge {edge.label}: contract "
                f"{src.text!r} is incompatible with {dst.text!r} "
                f"({mismatch})",
            ))
            continue
        if src.spec is None or dst.spec is None:
            continue
        for i, (ts, td) in enumerate(zip(src.spec.dims, dst.spec.dims)):
            a = _dim_term(edge.src, edge.src_port, i, ts)
            b = _dim_term(edge.dst, edge.dst_port, i, td)
            conflict = unifier.union(a, b, f"{edge.label} (dim {i})")
            if conflict is None:
                continue
            va, ta, vb, tb = conflict
            key = frozenset((ta, tb))
            if key in reported:
                continue
            reported.add(key)
            chain = unifier.explain(ta, tb)
            findings.append(_finding(
                graph, RULE_UNIFICATION,
                f"graph {name!r}: unsatisfiable dimension constraints: "
                f"{_term_label(ta)} = {va} conflicts with "
                f"{_term_label(tb)} = {vb} via {'; '.join(chain)}",
            ))
    return findings


def solved_dims(graph: GraphUnderCheck) -> dict[str, dict[str, int]]:
    """``{node: {symbol: value}}`` for symbols unification pins to ints."""
    findings: list[Finding] = []
    parsed = _parse_graph_ports(graph, findings)
    unifier = _Unifier()
    for edge in graph.spec.edges:
        src = parsed.get((edge.src, edge.src_port))
        dst = parsed.get((edge.dst, edge.dst_port))
        if (src is None or dst is None or src.spec is None
                or dst.spec is None
                or len(src.spec.dims) != len(dst.spec.dims)):
            continue
        for i, (ts, td) in enumerate(zip(src.spec.dims, dst.spec.dims)):
            unifier.union(_dim_term(edge.src, edge.src_port, i, ts),
                          _dim_term(edge.dst, edge.dst_port, i, td),
                          f"{edge.label} (dim {i})")
    out: dict[str, dict[str, int]] = {}
    for (node, _port), pc in parsed.items():
        if pc.spec is None:
            continue
        for tok in pc.spec.dims:
            if isinstance(tok, int):
                continue
            value = unifier.value_of(("var", node, tok))
            if value is not None:
                out.setdefault(node, {})[tok] = value
    return out


# -- RPR012: port contracts vs kernel @contract ------------------------------

@dataclass(frozen=True)
class KernelContractInfo:
    """One resolved kernel implementation with its declarations."""

    label: str  #: ``"backend 'fast'"`` or ``"callee"`` (direct calls)
    qname: str
    decls: dict[str, str]


def resolve_slot_kernels(
    contexts: Sequence[ModuleContext], callgraph: CallGraph,
) -> dict[str, list[KernelContractInfo]]:
    """``{slot: [kernel info per backend]}`` from the registry module.

    Every ``KernelBackend(...)`` literal in ``perf/registry.py`` is read
    statically; slot callables are resolved through the call graph with
    trivial adapters unwrapped (:func:`resolve_backend_kernel`), exactly
    as RPR004's backend arm does.
    """
    registry_ctx = None
    for ctx in contexts:
        parts = tuple(ctx.path_parts)
        if parts[-len(_REGISTRY_SUFFIX):] == _REGISTRY_SUFFIX:
            registry_ctx = ctx
            break
    if registry_ctx is None:
        return {}
    registry_module = None
    for module, path in callgraph.modules.items():
        if path == registry_ctx.path:
            registry_module = module
            break
    if registry_module is None:
        return {}
    out: dict[str, list[KernelContractInfo]] = {}
    for backend, (_lineno, slots) in sorted(
            extract_kernel_backends(registry_ctx.tree).items()):
        for slot, (dotted, _line) in slots.items():
            if dotted is None:
                continue
            qname = callgraph.resolve_function(f"{registry_module}.{dotted}")
            if qname is None:
                continue
            qname = resolve_backend_kernel(callgraph, qname)
            node = callgraph.functions.get(qname)
            if node is None or node.ast_node is None:
                continue
            # Kernels without @contract stay in the table with empty
            # decls: RPR012 has nothing to compare for them, but RPR013
            # still needs them reachable for buffer-reference collection.
            decls = extract_contract_decls(node.ast_node) or {}
            out.setdefault(slot, []).append(KernelContractInfo(
                label=f"backend {backend!r}", qname=qname, decls=decls))
    return out


def _body_qname(graph: GraphUnderCheck, node: str) -> str | None:
    if graph.body_qnames is not None:
        return graph.body_qnames.get(node)
    run = graph.stages[node].run
    module = getattr(run, "__module__", None)
    qualname = getattr(run, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        return None
    return f"{module}.{qualname}"


def _is_backend_receiver(node: ast.AST) -> bool:
    """The expression a slot attribute hangs off names the backend.

    Matches ``backend.<slot>(...)`` and ``ctx.backend.<slot>(...)``;
    deliberately NOT ``kernels.<slot>(...)`` or other module-attribute
    calls that merely share a slot's name (the workload cost model
    reuses kernel names).
    """
    return ((isinstance(node, ast.Name) and node.id == "backend")
            or (isinstance(node, ast.Attribute) and node.attr == "backend"))


def _slots_called(func_ast: ast.AST) -> set[str]:
    """Backend slots invoked as ``[ctx.]backend.<slot>(...)``."""
    slots: set[str] = set()
    for node in iter_own_nodes(func_ast):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in BACKEND_SLOTS
                and _is_backend_receiver(node.func.value)):
            slots.add(node.func.attr)
    return slots


def _kernel_port_problem(kernel: ArraySpec, port: ArraySpec) -> str | None:
    """Why a kernel's declared spec contradicts the port's, or ``None``.

    Shape tokens must agree where both sides are concrete (int vs
    different int), rank and leading ``...`` must agree when neither
    side is ellipsis-elided, and the dtype *kind* must match — the
    declared float width may differ, since f32 vs f64 IS the backend
    distinction (same convention as RPR004's backend arm).
    """
    if kernel.ellipsis_leading or port.ellipsis_leading:
        n = min(len(kernel.dims), len(port.dims))
        k_dims, p_dims = kernel.dims[-n:], port.dims[-n:]
    else:
        if len(kernel.dims) != len(port.dims):
            return (f"rank {len(kernel.dims)} != port rank "
                    f"{len(port.dims)}")
        k_dims, p_dims = kernel.dims, port.dims
    for i, (k, p) in enumerate(zip(k_dims, p_dims)):
        if isinstance(k, int) and isinstance(p, int) and k != p:
            return f"dim {i}: kernel {k} != port {p}"
    if (kernel.kind is not None and port.kind is not None
            and kernel.kind != port.kind):
        return (f"dtype kind {kernel.kind!r} != port kind {port.kind!r} "
                f"(width may differ, kind may not)")
    return None


def check_kernel_contracts(
    graph: GraphUnderCheck,
    callgraph: CallGraph,
    slot_kernels: dict[str, list[KernelContractInfo]],
) -> list[Finding]:
    """RPR012: each stage's ports vs the kernels its body calls.

    Kernels are matched to ports *by parameter name*: a kernel parameter
    named like one of the node's ports describes the same array, so its
    ``@contract`` and the port contract must agree (kernel parameters
    without a same-named port — poses, thresholds — are out of scope
    here; RPR004/RPR005 own those).  Two call seams are checked: kernel-
    backend slot calls (``ctx.backend.track(...)``), resolved for every
    registered backend, and direct depth-1 callees with ``@contract``.
    """
    findings: list[Finding] = []
    name = graph.spec.name
    for node, stage in graph.stages.items():
        qname = _body_qname(graph, node)
        fn = callgraph.functions.get(qname) if qname else None
        if fn is None or fn.ast_node is None:
            continue
        ports: dict[str, PortContract] = {}
        for port in _ports(stage):
            try:
                ports[port.name] = parse_port_contract(port.contract)
            except ContractError:
                continue  # RPR011 already reports it

        kernels: list[KernelContractInfo] = []
        for slot in sorted(_slots_called(fn.ast_node)):
            kernels.extend(slot_kernels.get(slot, ()))
        for callee in sorted(fn.calls):
            callee_node = callgraph.functions.get(callee)
            if callee_node is None or callee_node.ast_node is None:
                continue
            decls = extract_contract_decls(callee_node.ast_node)
            if decls:
                kernels.append(KernelContractInfo(
                    label="callee", qname=callee, decls=decls))

        for info in kernels:
            for param, text in sorted(info.decls.items()):
                pc = ports.get(param)
                if pc is None or pc.spec is None:
                    continue
                try:
                    kernel_spec = parse_contract(text)
                except ContractError as exc:
                    findings.append(_finding(
                        graph, RULE_KERNEL_CONTRACTS,
                        f"graph {name!r}: node {node!r}: {info.label} "
                        f"kernel {info.qname} declares unparsable "
                        f"@contract for {param!r}: {exc}",
                    ))
                    continue
                problem = _kernel_port_problem(kernel_spec, pc.spec)
                if problem is not None:
                    findings.append(_finding(
                        graph, RULE_KERNEL_CONTRACTS,
                        f"graph {name!r}: node {node!r}: {info.label} "
                        f"kernel {info.qname} declares "
                        f"@contract({param}={text!r}) but the graph "
                        f"port {node}.{param} carries {pc.text!r} "
                        f"({problem})",
                    ))
    return findings


# -- RPR013: arena buffer liveness -------------------------------------------

@dataclass(frozen=True)
class BufferRef:
    """One static arena-buffer reference reachable from a stage body.

    ``exact`` is False for f-string buffer names (``f"pyr_d{level}"``),
    where ``name`` is the literal leading text.
    """

    name: str
    exact: bool
    qname: str
    lineno: int


def _buffer_refs_in(func_ast: ast.AST, qname: str) -> list[BufferRef]:
    refs: list[BufferRef] = []
    for node in iter_own_nodes(func_ast):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("buffer", "zeros")
                and node.args):
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            refs.append(BufferRef(first.value, True, qname, node.lineno))
        elif (isinstance(first, ast.JoinedStr) and first.values
                and isinstance(first.values[0], ast.Constant)
                and isinstance(first.values[0].value, str)):
            refs.append(BufferRef(first.values[0].value, False, qname,
                                  node.lineno))
    return refs


def collect_buffer_refs(
    graph: GraphUnderCheck,
    callgraph: CallGraph,
    slot_kernels: dict[str, list[KernelContractInfo]],
) -> dict[str, list[BufferRef]]:
    """Arena buffer references reachable from each stage body.

    BFS over the static call graph starting at the stage body, with
    kernel-backend slot calls (``ctx.backend.integrate(...)`` — opaque
    to the call graph) expanded to every registered backend's resolved
    kernel, so the fast path's ``ws.buffer("int_x", ...)`` sites are
    attributed to the stage that triggers them.
    """
    out: dict[str, list[BufferRef]] = {}
    for node in graph.stages:
        qname = _body_qname(graph, node)
        if qname is None or qname not in callgraph.functions:
            out[node] = []
            continue
        refs: list[BufferRef] = []
        seen = {qname}
        frontier = deque([qname])
        while frontier:
            current = frontier.popleft()
            fn = callgraph.functions.get(current)
            if fn is None or fn.ast_node is None:
                continue
            refs.extend(_buffer_refs_in(fn.ast_node, current))
            nexts: list[str] = sorted(fn.calls)
            for slot in _slots_called(fn.ast_node):
                nexts.extend(info.qname
                             for info in slot_kernels.get(slot, ()))
            for target in nexts:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        out[node] = refs
    return out


def _region_for(name: str, regions: Sequence) -> Any | None:
    """Longest-prefix region owning buffer ``name``, or ``None``."""
    best = None
    for region in regions:
        if name.startswith(region.prefix):
            if best is None or len(region.prefix) > len(best.prefix):
                best = region
    return best


def topo_schedule(graph: GraphUnderCheck) -> list[str] | None:
    """Deterministic Kahn schedule (lexicographic ties); None on a cycle.

    Mirrors the graph compiler's scheduler so the liveness analysis sees
    the exact stage order a run would use, without importing
    :mod:`repro.graph` from the analysis layer.
    """
    nodes = list(graph.stages)
    indegree = {n: 0 for n in nodes}
    successors: dict[str, list[str]] = {n: [] for n in nodes}
    for edge in graph.spec.edges:
        if edge.src in indegree and edge.dst in indegree:
            indegree[edge.dst] += 1
            successors[edge.src].append(edge.dst)
    ready = sorted(n for n, deg in indegree.items() if deg == 0)
    order: list[str] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        changed = False
        for succ in successors[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
                changed = True
        if changed:
            ready.sort()
    return order if len(order) == len(nodes) else None


def check_liveness(
    graph: GraphUnderCheck,
    schedule: Sequence[str],
    refs_by_node: dict[str, list[BufferRef]],
) -> list[Finding]:
    """RPR013: declared arena regions vs the schedule and observed refs.

    A region is live from its writer's slot to its last declared
    reader's slot (the whole frame — and across the frame boundary —
    when ``cross_frame``).  Findings:

    * a reader scheduled at/before the writer without ``cross_frame``
      reads memory the previous frame released (use-after-release);
    * a stage outside the region touching its buffers inside the live
      window clobbers live data (overlapping-lifetime write), outside
      the window it resurrects released memory (use-after-release);
    * a buffer reference no region covers is unplanned arena use;
    * a region whose writer never references a matching buffer is dead
      budget (warning);
    * a stage that touches the arena while declaring no workspace need
      runs unplanned.
    """
    findings: list[Finding] = []
    name = graph.spec.name
    regions = tuple(getattr(graph.spec, "regions", ()) or ())
    pos = {node: i for i, node in enumerate(schedule)}

    for region in regions:
        for member in (region.writer, *region.readers):
            if member not in pos:
                findings.append(_finding(
                    graph, RULE_ARENA_LIVENESS,
                    f"graph {name!r}: arena region {region.prefix!r} "
                    f"names unknown node {member!r}",
                ))
        if region.writer not in pos:
            continue
        if not region.cross_frame:
            for reader in region.readers:
                if reader in pos and pos[reader] <= pos[region.writer]:
                    findings.append(_finding(
                        graph, RULE_ARENA_LIVENESS,
                        f"graph {name!r}: arena region {region.prefix!r}: "
                        f"use-after-release — reader {reader!r} is "
                        f"scheduled at/before writer {region.writer!r}, "
                        f"so it would read the previous frame's released "
                        f"buffers (declare cross_frame=True if that is "
                        f"intended)",
                    ))

    matched_regions: set[int] = set()
    for node, refs in refs_by_node.items():
        if refs and getattr(graph.stages[node], "workspace_need",
                            None) is None:
            findings.append(_finding(
                graph, RULE_ARENA_LIVENESS,
                f"graph {name!r}: node {node!r} touches the arena "
                f"({refs[0].name!r} in {refs[0].qname}) but its stage "
                f"declares no workspace need — the bytes are unplanned",
            ))
        for ref in refs:
            region = _region_for(ref.name, regions)
            if region is None:
                findings.append(_finding(
                    graph, RULE_ARENA_LIVENESS,
                    f"graph {name!r}: node {node!r}: arena buffer "
                    f"{ref.name!r} ({ref.qname}:{ref.lineno}) matches no "
                    f"declared region — unplanned arena use",
                ))
                continue
            matched_regions.add(id(region))
            members = {region.writer, *region.readers}
            if node in members or node not in pos:
                continue
            writer_pos = pos.get(region.writer)
            if writer_pos is None:
                continue  # bad writer already reported
            window_end = max(
                [pos[r] for r in region.readers if r in pos],
                default=writer_pos,
            )
            if region.cross_frame or writer_pos <= pos[node] <= window_end:
                findings.append(_finding(
                    graph, RULE_ARENA_LIVENESS,
                    f"graph {name!r}: node {node!r}: overlapping-lifetime "
                    f"write — buffer {ref.name!r} ({ref.qname}:"
                    f"{ref.lineno}) belongs to region {region.prefix!r} "
                    f"(writer {region.writer!r}, readers "
                    f"{sorted(region.readers)}) which is live while "
                    f"{node!r} runs",
                ))
            else:
                findings.append(_finding(
                    graph, RULE_ARENA_LIVENESS,
                    f"graph {name!r}: node {node!r}: use-after-release — "
                    f"buffer {ref.name!r} ({ref.qname}:{ref.lineno}) "
                    f"belongs to region {region.prefix!r} whose lifetime "
                    f"ended at {schedule[window_end]!r}",
                ))

    writers_refs = {
        node: [r.name for r in refs] for node, refs in refs_by_node.items()
    }
    for region in regions:
        if region.writer not in pos:
            continue
        hit = any(
            _region_for(ref_name, regions) is region
            for ref_name in writers_refs.get(region.writer, ())
        )
        if not hit:
            findings.append(_finding(
                graph, RULE_ARENA_LIVENESS,
                f"graph {name!r}: arena region {region.prefix!r} declares "
                f"budget for writer {region.writer!r} but no reachable "
                f"kernel references a matching buffer — dead budget",
                severity=Severity.WARNING,
            ))
    return findings


# -- the driver --------------------------------------------------------------

def check_graphs(
    graphs: Sequence[GraphUnderCheck],
    contexts: Sequence[ModuleContext] | None = None,
) -> list[Finding]:
    """Run RPR011/012/013 over the given graph definitions.

    ``contexts`` are the parsed first-party modules; without them only
    the unification pass (RPR011) and injected-ref liveness run, since
    RPR012/013 need the static call graph.
    """
    findings: list[Finding] = []
    callgraph = None
    slot_kernels: dict[str, list[KernelContractInfo]] = {}
    if contexts:
        callgraph = build_callgraph(contexts)
        slot_kernels = resolve_slot_kernels(contexts, callgraph)
    for graph in graphs:
        findings.extend(unify_graph(graph))
        if callgraph is not None:
            findings.extend(
                check_kernel_contracts(graph, callgraph, slot_kernels))
        refs = graph.refs_by_node
        if refs is None and callgraph is not None:
            refs = collect_buffer_refs(graph, callgraph, slot_kernels)
        if refs is not None:
            schedule = topo_schedule(graph)
            if schedule is not None:
                findings.extend(check_liveness(graph, schedule, refs))
    return sorted(findings, key=Finding.sort_key)


def describe_graph(graph: GraphUnderCheck) -> dict:
    """JSON-safe summary for ``repro dataflow show``."""
    ports = []
    for node, stage in sorted(graph.stages.items()):
        for direction, plist in (("in", stage.inputs),
                                 ("out", stage.outputs)):
            for port in plist:
                try:
                    pc = parse_port_contract(port.contract)
                    normalized = format_port_contract(pc)
                except ContractError:
                    normalized = "<unparsable>"
                ports.append({
                    "node": node,
                    "port": port.name,
                    "direction": direction,
                    "contract": port.contract,
                    "normalized": normalized,
                })
    regions = [
        {
            "prefix": region.prefix,
            "writer": region.writer,
            "readers": sorted(region.readers),
            "cross_frame": bool(region.cross_frame),
        }
        for region in (getattr(graph.spec, "regions", ()) or ())
    ]
    return {
        "graph": graph.spec.name,
        "origin": graph.origin,
        "schedule": topo_schedule(graph) or [],
        "ports": ports,
        "solved_dims": solved_dims(graph),
        "regions": regions,
    }


def apply_noqa(findings: Iterable[Finding],
               read_text: Callable[[str], str] | None = None
               ) -> list[Finding]:
    """Drop findings suppressed by ``# noqa`` comments in their files."""
    if read_text is None:
        def read_text(path: str) -> str:
            return Path(path).read_text()
    lines_cache: dict[str, list[str]] = {}
    kept: list[Finding] = []
    for finding in findings:
        if finding.path not in lines_cache:
            try:
                lines_cache[finding.path] = read_text(
                    finding.path).splitlines()
            except OSError:
                lines_cache[finding.path] = []
        if not _suppressed(finding, lines_cache[finding.path]):
            kept.append(finding)
    return kept


def parse_contexts(paths: Sequence[str]) -> list[ModuleContext]:
    """Parse every first-party ``.py`` file under ``paths``.

    Unparsable files are skipped here — ``repro lint`` owns reporting
    them (RPR000); the dataflow verifier only needs whatever call-graph
    context it can get.
    """
    from .framework import iter_python_files

    contexts: list[ModuleContext] = []
    for file in iter_python_files(paths):
        try:
            contexts.append(ModuleContext.parse(file.read_text(),
                                                str(file)))
        except (OSError, SyntaxError):
            continue
    return contexts


def run_dataflow(
    graphs: Sequence[GraphUnderCheck],
    paths: Sequence[str],
    *,
    output_format: str = "text",
    baseline_path: str | None = None,
    extra_findings: Sequence[Finding] = (),
    echo: Callable[[str], None] = print,
) -> int:
    """``repro dataflow check``: verify ``graphs``, report, exit-code.

    Follows the lint contract — 0 clean, 1 findings, 2 internal error —
    and the same suppression machinery: ``# noqa`` comments at a
    finding's anchor line and the committed fingerprint baseline both
    apply.  ``paths`` supply the static call-graph context (normally
    ``src/repro``).  ``extra_findings`` lets the caller merge failures
    it observed while *collecting* the graphs (a registered factory
    that raised — the CI gate for uncompilable registry entries).
    """
    from ..errors import ReproError
    from .baseline import apply_baseline, load_baseline
    from .lint import (
        LINT_EXIT_CLEAN,
        LINT_EXIT_FINDINGS,
        LINT_EXIT_INTERNAL,
    )
    from .reporters import format_json, format_text

    import traceback

    try:
        contexts = parse_contexts(paths)
        findings = sorted(
            [*extra_findings, *check_graphs(graphs, contexts)],
            key=Finding.sort_key,
        )
        findings = apply_noqa(findings)
        suppressed = 0
        if baseline_path and Path(baseline_path).is_file():
            findings, suppressed = apply_baseline(
                findings, load_baseline(baseline_path))
        render = format_json if output_format == "json" else format_text
        echo(render(findings, suppressed))
        return LINT_EXIT_FINDINGS if findings else LINT_EXIT_CLEAN
    except ReproError as exc:
        echo(f"dataflow: internal error: {exc}")
        return LINT_EXIT_INTERNAL
    except Exception:
        echo("dataflow: internal error:\n" + traceback.format_exc())
        return LINT_EXIT_INTERNAL
