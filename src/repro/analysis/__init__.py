"""Repo-specific static analysis and contract checking (``repro lint``).

The paper's invariants — one timing source per kernel, deterministic
seeded runs, a design space that matches what KinectFusion consumes —
are machine-enforced here rather than left to reviewer vigilance:

=======  ==============================================================
RPR001   timing-discipline: no stdlib clock reads outside
         :mod:`repro.telemetry`
RPR002   rng-discipline: no ``np.random.seed`` / legacy global draws —
         inject a seeded ``np.random.Generator``
RPR003   error-policy: raise the :mod:`repro.errors` hierarchy, and CLI
         ``main()`` must catch :class:`~repro.errors.ReproError`
RPR004   config-space consistency: ``kfusion_design_space`` ==
         ``KFusionParams`` == ``DEFAULTS``, defaults in bounds, every
         knob consumed
RPR005   contract-validation: ``@contract`` strings parse, name real
         parameters, and do not contradict each other
RPR006   process-discipline: no ``multiprocessing`` /
         ``concurrent.futures`` outside :mod:`repro.jobs` — use
         ``WorkerPool``/``JobRunner``
RPR007   dtype-discipline: no float64 temporaries in the kfusion /
         :mod:`repro.perf` hot paths — explicit float32, with
         ``# f64-ok:`` waivers for the deliberate solver float64
=======  ==============================================================

Programmatic use::

    from repro.analysis import analyze_paths, run_lint

    findings = analyze_paths(["src/repro"])
    exit_code = run_lint(["src/repro"], output_format="json")

Importing this package registers all checkers; the per-rule modules are
:mod:`~repro.analysis.checkers` (RPR001/2/3/5/6/7) and
:mod:`~repro.analysis.consistency` (RPR004).
"""

from . import checkers as _checkers  # noqa: F401 (registers RPR001/2/3/5/6/7)
from . import consistency as _consistency  # noqa: F401  (registers RPR004)
from .baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .contracts import ArraySpec, ContractError, contract, parse_contract
from .findings import Finding, Severity
from .framework import (
    AnalysisError,
    Checker,
    ModuleContext,
    ProjectChecker,
    analyze_paths,
    analyze_source,
    register_checker,
    rule_catalogue,
)
from .lint import run_lint
from .reporters import format_json, format_text

__all__ = [
    "AnalysisError",
    "ArraySpec",
    "Checker",
    "ContractError",
    "DEFAULT_BASELINE",
    "Finding",
    "ModuleContext",
    "ProjectChecker",
    "Severity",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "contract",
    "format_json",
    "format_text",
    "load_baseline",
    "parse_contract",
    "register_checker",
    "rule_catalogue",
    "run_lint",
    "write_baseline",
]
