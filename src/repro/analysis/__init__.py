"""Repo-specific static analysis and contract checking (``repro lint``).

The paper's invariants — one timing source per kernel, deterministic
seeded runs, a design space that matches what KinectFusion consumes —
are machine-enforced here rather than left to reviewer vigilance:

=======  ==============================================================
RPR001   timing-discipline: no stdlib clock reads outside
         :mod:`repro.telemetry`
RPR002   rng-discipline: no ``np.random.seed`` / legacy global draws —
         inject a seeded ``np.random.Generator``
RPR003   error-policy: raise the :mod:`repro.errors` hierarchy, and CLI
         ``main()`` must catch :class:`~repro.errors.ReproError`
RPR004   config-space consistency: ``kfusion_design_space`` ==
         ``KFusionParams`` == ``DEFAULTS``, defaults in bounds, every
         knob consumed; fast/reference kernel backends declare
         matching ``@contract`` shapes (dtype width may differ)
RPR005   contract-validation: ``@contract`` strings parse, name real
         parameters, and do not contradict each other
RPR006   process-discipline: no ``multiprocessing`` /
         ``concurrent.futures`` outside :mod:`repro.jobs` — use
         ``WorkerPool``/``JobRunner``
RPR007   dtype-discipline: no float64 temporaries in the kfusion /
         :mod:`repro.perf` hot paths — explicit float32, with
         ``# f64-ok:`` waivers for the deliberate solver float64
RPR008   layer-discipline: imports/calls must point down the
         ``ARCHITECTURE.toml`` layer DAG, and every module must be
         covered by a layer
RPR009   transitive-effect-discipline: whole-program effect inference
         (call graph + fixpoint) holds each layer to its effect budget;
         findings carry the full ``via a -> b -> c`` chain
RPR010   workspace-alloc-discipline: hot :mod:`repro.perf` modules
         allocate through the workspace arena, with ``# effect-ok:``
         waivers for variable-length working sets
RPR011   shape-dtype-unification: every stage-graph port contract
         parses, and symbolic dims unify along edges across the whole
         graph — conflicts report the full edge chain that forces them
RPR012   kernel-contract-consistency: graph port contracts agree with
         the ``@contract`` declarations of the kernels each stage body
         calls (all registered backends, dtype *kind* compared)
RPR013   arena-liveness: declared arena regions are consistent with the
         schedule and the buffer names reachable kernels touch — no
         use-after-release, overlapping-lifetime writes, or dead budget
RPR014   lockset-discipline: state written in multi-thread-reachable
         code needs a non-empty common lockset, a verified ``[[lock]]``
         guards declaration, or ``# guarded-by: <target> -- <reason>``
RPR015   lock-order-discipline: nested lock acquisitions must form a
         DAG — ordering cycles are potential deadlocks
RPR016   wait-discipline: untimed ``Condition.wait`` sits in a
         predicate loop; no blocking or forbidden-effect calls while
         holding a lock (composes with the RPR009 effect fixpoint)
=======  ==============================================================

RPR011-013 run against the *registered graph definitions* rather than
per-file, so they live in ``repro dataflow check`` (same exit-code
contract, same noqa/baseline machinery) instead of ``repro lint``; see
:mod:`repro.analysis.dataflow`.  RPR014-016 (the lockset concurrency
verifier over the thread/process layers) also run standalone under
``repro races check`` with a committed ``CONCURRENCY.json`` snapshot;
see :mod:`~repro.analysis.concurrency` and :mod:`~repro.analysis.races`.

Programmatic use::

    from repro.analysis import analyze_paths, run_lint

    findings = analyze_paths(["src/repro"])
    exit_code = run_lint(["src/repro"], output_format="json")

Importing this package registers all checkers; the per-rule modules are
:mod:`~repro.analysis.checkers` (RPR001/2/3/5/6/7),
:mod:`~repro.analysis.consistency` (RPR004),
:mod:`~repro.analysis.policy` (RPR008/9/10, backed by
:mod:`~repro.analysis.callgraph` and :mod:`~repro.analysis.effects`) and
:mod:`~repro.analysis.concurrency` (RPR014/15/16).
"""

from . import checkers as _checkers  # noqa: F401 (registers RPR001/2/3/5/6/7)
from . import concurrency as _concurrency  # noqa: F401 (RPR014/15/16)
from . import consistency as _consistency  # noqa: F401  (registers RPR004)
from . import policy as _policy  # noqa: F401  (registers RPR008/9/10)
from .baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    migrate_baseline,
    write_baseline,
)
from .callgraph import CallGraph, build_callgraph, module_name_for
from .contracts import (
    ArraySpec,
    ContractError,
    contract,
    contracts_equal,
    format_contract,
    parse_contract,
)
from .dataflow import (
    GraphUnderCheck,
    PortContract,
    check_graphs,
    format_port_contract,
    parse_port_contract,
    port_contract_mismatch,
    run_dataflow,
)
from .effects import (
    DEFAULT_SNAPSHOT,
    EffectAnalysis,
    diff_snapshots,
    load_snapshot,
    snapshot_payload,
    write_snapshot,
)
from .findings import Finding, Severity
from .framework import (
    AnalysisError,
    Checker,
    ModuleContext,
    ProjectChecker,
    analyze_paths,
    analyze_source,
    register_checker,
    rule_catalogue,
)
from .lint import run_lint
from .policy import ArchPolicy, PolicyError, load_policy, project_state
from .reporters import format_json, format_text

__all__ = [
    "AnalysisError",
    "ArchPolicy",
    "ArraySpec",
    "CallGraph",
    "Checker",
    "ContractError",
    "DEFAULT_BASELINE",
    "DEFAULT_SNAPSHOT",
    "EffectAnalysis",
    "Finding",
    "GraphUnderCheck",
    "ModuleContext",
    "PolicyError",
    "PortContract",
    "ProjectChecker",
    "Severity",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "build_callgraph",
    "check_graphs",
    "contract",
    "contracts_equal",
    "diff_snapshots",
    "format_contract",
    "format_json",
    "format_port_contract",
    "format_text",
    "load_baseline",
    "load_policy",
    "load_snapshot",
    "migrate_baseline",
    "module_name_for",
    "parse_contract",
    "parse_port_contract",
    "port_contract_mismatch",
    "project_state",
    "run_dataflow",
    "register_checker",
    "rule_catalogue",
    "run_lint",
    "snapshot_payload",
    "write_snapshot",
]
