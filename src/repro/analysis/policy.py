"""Architecture policy: layer DAG, effect budgets, and rules RPR008-010.

The committed ``ARCHITECTURE.toml`` at the repository root declares the
intended shape of the codebase:

* ``[[layer]]`` tables, bottom-up.  Each names a set of ``repro.*``
  package prefixes (longest prefix wins, so ``repro.core.config`` can
  sit below the rest of ``repro.core``).  A layer may import/call its
  own and *lower* layers only — unless it lists an explicit ``uses``
  set, which restricts it further (the layer order plus ``uses`` edges
  form the layer DAG).
* per-layer ``forbid`` lists: effects (see
  :mod:`repro.analysis.effects`) no function in the layer may carry,
  directly or transitively.
* ``[arena]``: the ``hot`` perf modules where fresh numpy allocation
  must go through the workspace arena, and the ``arena`` modules that
  absorb the ``alloc`` effect.
* ``[[waiver]]`` entries: reviewed exceptions, each with a ``reason``.

Three project rules enforce the policy through the normal lint
pipeline:

* **RPR008 layer-discipline** — an import or resolved call edge from a
  lower layer into a higher one (or a module no layer covers).
* **RPR009 transitive-effect-discipline** — a function in a budgeted
  layer carries a forbidden effect; the finding shows the full
  ``via a -> b -> c`` call chain down to the concrete seed.
* **RPR010 workspace-alloc-discipline** — allocation entering a hot
  perf module: intrinsic ``np.zeros``-style seeds are flagged at their
  line, transitive allocation at the function with its chain.

All three only fire when an ``ARCHITECTURE.toml`` is present in the
working directory, and only for files inside that directory tree — a
policy governs the tree it sits at the root of.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from ..errors import ReproError
from .callgraph import CallGraph, build_callgraph
from .effects import DEFAULT_ABSORB, EffectAnalysis, EFFECTS
from .findings import Finding
from .framework import ModuleContext, ProjectChecker, register_checker

#: Committed policy file, looked up in the working directory.
DEFAULT_POLICY = "ARCHITECTURE.toml"
POLICY_VERSION = 1


class PolicyError(ReproError):
    """The architecture policy file is missing, malformed or inconsistent."""


# -- minimal TOML subset (tier-1 CI includes pythons without tomllib) -------
def _parse_toml_subset(text: str) -> dict:
    """Parse the TOML subset ``ARCHITECTURE.toml`` uses.

    Supported: ``[table]`` / ``[[array-of-tables]]`` headers, ``key =``
    with string / integer / boolean / array-of-strings values (arrays
    may span lines), ``#`` comments.  This exists only as a fallback for
    interpreters without :mod:`tomllib`; on modern pythons the real
    parser is used.
    """
    root: dict = {}
    current = root

    def strip_comment(line: str) -> str:
        out = []
        in_str = False
        for ch in line:
            if ch == '"':
                in_str = not in_str
            if ch == "#" and not in_str:
                break
            out.append(ch)
        return "".join(out).strip()

    def parse_value(raw: str):
        raw = raw.strip()
        if raw.startswith("[") and raw.endswith("]"):
            inner = raw[1:-1].strip()
            if not inner:
                return []
            return [parse_value(item)
                    for item in _split_toml_array(inner)]
        if raw.startswith('"') and raw.endswith('"') and len(raw) >= 2:
            return raw[1:-1]
        if raw in ("true", "false"):
            return raw == "true"
        try:
            return int(raw)
        except ValueError:
            raise PolicyError(f"unsupported TOML value: {raw!r}")

    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = strip_comment(lines[i])
        i += 1
        if not line:
            continue
        if line.startswith("[[") and line.endswith("]]"):
            name = line[2:-2].strip()
            current = {}
            root.setdefault(name, []).append(current)
        elif line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            current = root.setdefault(name, {})
            if not isinstance(current, dict):
                raise PolicyError(f"TOML table/array clash at [{name}]")
        elif "=" in line:
            key, _, raw = line.partition("=")
            raw = raw.strip()
            # multi-line array: accumulate until brackets balance
            while raw.count("[") > raw.count("]"):
                if i >= len(lines):
                    raise PolicyError("unterminated TOML array")
                raw += " " + strip_comment(lines[i])
                i += 1
            current[key.strip()] = parse_value(raw)
        else:
            raise PolicyError(f"unsupported TOML line: {line!r}")
    return root


def _split_toml_array(inner: str) -> list[str]:
    items, buf, in_str = [], [], False
    for ch in inner:
        if ch == '"':
            in_str = not in_str
        if ch == "," and not in_str:
            items.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
    tail = "".join(buf).strip()
    if tail:
        items.append(tail)
    return [s for s in (item.strip() for item in items) if s]


def _load_toml(path: Path) -> dict:
    text = path.read_text(encoding="utf-8")
    try:
        import tomllib
    except ImportError:
        return _parse_toml_subset(text)
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise PolicyError(f"malformed {path}: {exc}") from exc


# -- policy model -----------------------------------------------------------
@dataclass(frozen=True)
class Layer:
    name: str
    index: int  #: position bottom-up in the file
    packages: tuple[str, ...]
    forbid: tuple[str, ...] = ()
    uses: tuple[str, ...] | None = None  #: explicit lower-layer allowance


@dataclass(frozen=True)
class Waiver:
    rule: str
    reason: str
    source: str = ""  #: module prefix the edge starts from (RPR008)
    target: str = ""  #: module/package prefix the edge lands in (RPR008)


@dataclass(frozen=True)
class LockPolicy:
    """One ``[[lock]]`` table: what a lock guards and what it forbids.

    ``guards`` entries are *assertions* the concurrency verifier checks
    (every listed field must really have this lock in its common
    lockset); ``forbid`` lists extra effects (beyond the always-banned
    ``io``/``process``) no call may carry while the lock is held.
    """

    name: str  #: lock qname, e.g. ``repro.serve.engine.ServeEngine._lock``
    guards: tuple[str, ...] = ()
    forbid: tuple[str, ...] = ()
    reason: str = ""


@dataclass
class ArchPolicy:
    """The parsed, validated architecture policy."""

    root: str
    layers: list[Layer]
    hot: tuple[str, ...] = ()
    arena: tuple[str, ...] = ()
    waivers: list[Waiver] = field(default_factory=list)
    path: str = DEFAULT_POLICY
    #: extra any-thread entry points for the concurrency verifier
    #: (class qnames -> their public methods, or function qnames)
    conc_entries: tuple[str, ...] = ()
    #: public methods documented as externally serialized (scheduler
    #: thread / sync mode only): qname -> reason; excluded from the
    #: any-thread entry set
    conc_serialized: dict[str, str] = field(default_factory=dict)
    #: per-lock policies declared in ``[[lock]]`` tables
    lock_policies: tuple[LockPolicy, ...] = ()

    def __post_init__(self) -> None:
        self._by_name = {layer.name: layer for layer in self.layers}
        prefixes: list[tuple[str, Layer]] = []
        for layer in self.layers:
            for pkg in layer.packages:
                prefixes.append((pkg, layer))
        #: longest-prefix-first package table
        self._prefixes = sorted(prefixes, key=lambda p: -len(p[0]))
        self.validate()

    def validate(self) -> None:
        if not self.layers:
            raise PolicyError(f"{self.path}: no [[layer]] entries")
        seen_pkgs: dict[str, str] = {}
        for layer in self.layers:
            if not layer.packages:
                raise PolicyError(
                    f"{self.path}: layer {layer.name!r} lists no packages")
            for eff in layer.forbid:
                if eff not in EFFECTS:
                    raise PolicyError(
                        f"{self.path}: layer {layer.name!r} forbids unknown "
                        f"effect {eff!r} (known: {', '.join(EFFECTS)})")
            for pkg in layer.packages:
                if pkg != self.root and not pkg.startswith(self.root + "."):
                    raise PolicyError(
                        f"{self.path}: package {pkg!r} in layer "
                        f"{layer.name!r} is outside root {self.root!r}")
                if pkg in seen_pkgs:
                    raise PolicyError(
                        f"{self.path}: package {pkg!r} claimed by layers "
                        f"{seen_pkgs[pkg]!r} and {layer.name!r}")
                seen_pkgs[pkg] = layer.name
            for used in layer.uses or ():
                target = self._by_name.get(used)
                if target is None:
                    raise PolicyError(
                        f"{self.path}: layer {layer.name!r} uses unknown "
                        f"layer {used!r}")
                if target.index >= layer.index:
                    raise PolicyError(
                        f"{self.path}: layer {layer.name!r} may only use "
                        f"lower layers, not {used!r} (the layer order plus "
                        f"uses-edges must form a DAG)")
        for lp in self.lock_policies:
            if not lp.name or not lp.reason:
                raise PolicyError(
                    f"{self.path}: every [[lock]] needs a name and a reason")
            for eff in lp.forbid:
                if eff not in EFFECTS:
                    raise PolicyError(
                        f"{self.path}: lock {lp.name!r} forbids unknown "
                        f"effect {eff!r} (known: {', '.join(EFFECTS)})")
        for name, reason in self.conc_serialized.items():
            if not name or not reason:
                raise PolicyError(
                    f"{self.path}: every [[serialized]] needs a name and "
                    f"a reason")

    def layer_of(self, module: str) -> Layer | None:
        """Longest-prefix layer for a dotted module (or symbol) name.

        The bare root package matches only *exactly* — listing ``repro``
        in a layer covers ``repro/__init__.py``, not every submodule, so
        new packages still trip the RPR008 coverage check until they are
        placed in a layer deliberately.
        """
        for prefix, layer in self._prefixes:
            if module == prefix:
                return layer
            if prefix != self.root and module.startswith(prefix + "."):
                return layer
        return None

    def allowed(self, from_layer: Layer, to_layer: Layer) -> bool:
        if from_layer.name == to_layer.name:
            return True
        if from_layer.uses is not None:
            return to_layer.name in from_layer.uses
        return to_layer.index < from_layer.index

    def waived(self, rule: str, source: str, target: str) -> bool:
        for w in self.waivers:
            if w.rule != rule:
                continue
            if (source == w.source or source.startswith(w.source + ".")) \
                    and (target == w.target
                         or target.startswith(w.target + ".")):
                return True
        return False

    def in_hot_path(self, module: str) -> bool:
        return any(module == h or module.startswith(h + ".")
                   for h in self.hot)

    def in_arena(self, module: str) -> bool:
        return any(module == a or module.startswith(a + ".")
                   for a in self.arena)


def load_policy(path: str | Path = DEFAULT_POLICY) -> ArchPolicy:
    """Load and validate the committed policy file."""
    p = Path(path)
    if not p.is_file():
        raise PolicyError(f"no architecture policy at {p}")
    data = _load_toml(p)
    version = data.get("version")
    if version != POLICY_VERSION:
        raise PolicyError(
            f"{p}: policy version {version!r}; expected {POLICY_VERSION}")
    root = data.get("root")
    if not isinstance(root, str) or not root:
        raise PolicyError(f"{p}: missing root package name")
    layers = []
    for i, entry in enumerate(data.get("layer", [])):
        uses = entry.get("uses")
        layers.append(Layer(
            name=str(entry.get("name", f"layer{i}")),
            index=i,
            packages=tuple(entry.get("packages", [])),
            forbid=tuple(entry.get("forbid", [])),
            uses=None if uses is None else tuple(uses),
        ))
    arena_tbl = data.get("arena", {})
    waivers = []
    for entry in data.get("waiver", []):
        rule = str(entry.get("rule", ""))
        reason = str(entry.get("reason", ""))
        if not rule or not reason:
            raise PolicyError(
                f"{p}: every [[waiver]] needs a rule and a reason")
        waivers.append(Waiver(
            rule=rule, reason=reason,
            source=str(entry.get("from", "")),
            target=str(entry.get("to", "")),
        ))
    conc_tbl = data.get("concurrency", {})
    serialized: dict[str, str] = {}
    for entry in data.get("serialized", []):
        serialized[str(entry.get("name", ""))] = str(entry.get("reason", ""))
    lock_policies = []
    for entry in data.get("lock", []):
        lock_policies.append(LockPolicy(
            name=str(entry.get("name", "")),
            guards=tuple(entry.get("guards", [])),
            forbid=tuple(entry.get("forbid", [])),
            reason=str(entry.get("reason", "")),
        ))
    return ArchPolicy(
        root=root,
        layers=layers,
        hot=tuple(arena_tbl.get("hot", [])),
        arena=tuple(arena_tbl.get("arena",
                                  DEFAULT_ABSORB.get("alloc", ()))),
        waivers=waivers,
        path=str(p),
        conc_entries=tuple(conc_tbl.get("entries", [])),
        conc_serialized=serialized,
        lock_policies=tuple(lock_policies),
    )


# -- shared per-run computation ---------------------------------------------
@dataclass
class ProjectState:
    """Policy + call graph + effect analysis, computed once per lint run."""

    policy: ArchPolicy
    graph: CallGraph
    analysis: EffectAnalysis


_STATE_ATTR = "_repro_arch_state"


def _policy_file_key():
    """Freshness token for the on-disk policy (edits invalidate caches)."""
    try:
        return Path(DEFAULT_POLICY).stat().st_mtime_ns
    except OSError:
        return None


def run_state_key(contexts: Sequence[ModuleContext],
                  policy: ArchPolicy | None = None) -> tuple:
    """Identity of one analysis run: the exact context objects (AST
    reuse via ``parse_cached`` hands back identical objects for
    identical sources) plus the governing policy.  Whole-program state
    cached on ``contexts[0]`` is only trusted when this key matches —
    a context reused in a different file set recomputes instead.
    """
    pol = id(policy) if policy is not None else _policy_file_key()
    return (tuple(id(c) for c in contexts), pol)


def project_state(contexts: Sequence[ModuleContext],
                  policy: ArchPolicy | None = None) -> ProjectState | None:
    """The shared analysis state for this checker run (``None`` without
    a policy file).

    The state is cached on the first context object keyed by
    :func:`run_state_key`, so RPR008/9/10 all reuse one call graph and
    one effect fixpoint per ``analyze_paths`` invocation — and repeat
    runs over the unchanged tree (memoized ASTs) skip the fixpoints
    entirely.
    """
    if not contexts:
        return None
    key = run_state_key(contexts, policy)
    cached = getattr(contexts[0], _STATE_ATTR, None)
    if cached is not None and cached[0] == key:
        return cached[1]
    if policy is None:
        policy_file = Path(DEFAULT_POLICY)
        if not policy_file.is_file():
            return None
        policy = load_policy(policy_file)
    scope_root = Path(policy.path).resolve().parent
    in_scope = []
    for ctx in contexts:
        resolved = Path(ctx.path).resolve()
        if scope_root == resolved or scope_root in resolved.parents:
            in_scope.append(ctx)
    graph = build_callgraph(in_scope, root_package=policy.root)
    absorb = dict(DEFAULT_ABSORB)
    absorb["alloc"] = tuple(policy.arena)
    analysis = EffectAnalysis(graph, absorb=absorb)
    state = ProjectState(policy=policy, graph=graph, analysis=analysis)
    setattr(contexts[0], _STATE_ATTR, (key, state))
    return state


def _chain_text(chain: Sequence[str]) -> str:
    return " -> ".join(chain)


def _policy_applies(contexts: Sequence[ModuleContext]) -> bool:
    return bool(contexts) and Path(DEFAULT_POLICY).is_file()


# -- RPR008 -----------------------------------------------------------------
@register_checker
class LayerDisciplineChecker(ProjectChecker):
    """RPR008: module dependencies must respect the layer DAG."""

    rule_id = "RPR008"
    title = "layer-discipline: imports/calls must point down the layer DAG"

    def applies(self, contexts: Sequence[ModuleContext]) -> bool:
        return _policy_applies(contexts)

    def check_project(self,
                      contexts: Sequence[ModuleContext]) -> Iterator[Finding]:
        state = project_state(contexts)
        if state is None:
            return
        policy, graph = state.policy, state.graph

        # every first-party module must be covered by some layer
        for module, path in sorted(graph.modules.items()):
            if policy.layer_of(module) is None:
                yield Finding(
                    path=path, line=1, col=1, rule_id=self.rule_id,
                    message=(f"module {module} is not covered by any layer "
                             f"in {policy.path}"),
                )

        seen_edges: set[tuple[str, str]] = set()

        def violation(from_module: str, target: str, path: str,
                      line: int, kind: str) -> Finding | None:
            from_layer = policy.layer_of(from_module)
            to_layer = policy.layer_of(target)
            if from_layer is None or to_layer is None:
                return None  # uncovered modules already reported above
            if policy.allowed(from_layer, to_layer):
                return None
            if policy.waived(self.rule_id, from_module, target):
                return None
            key = (from_module, to_layer.name + ":" + target)
            if key in seen_edges:
                return None
            seen_edges.add(key)
            return Finding(
                path=path, line=line, col=1, rule_id=self.rule_id,
                message=(f"layer {from_layer.name!r} module {from_module} "
                         f"{kind} {target} in higher layer "
                         f"{to_layer.name!r}"),
            )

        for edge in sorted(graph.import_edges,
                           key=lambda e: (e.path, e.lineno, e.target)):
            f = violation(edge.from_module, edge.target, edge.path,
                          edge.lineno, "imports")
            if f is not None:
                yield f

        for qname in sorted(graph.functions):
            node = graph.functions[qname]
            for callee in sorted(node.calls):
                target = graph.functions[callee]
                if target.module == node.module:
                    continue
                f = violation(node.module, target.module, node.path,
                              node.lineno, "calls into")
                if f is not None:
                    yield f


# -- RPR009 -----------------------------------------------------------------
@register_checker
class TransitiveEffectChecker(ProjectChecker):
    """RPR009: budgeted layers must not carry forbidden effects."""

    rule_id = "RPR009"
    title = "transitive-effect-discipline: layer effect budgets hold"

    def applies(self, contexts: Sequence[ModuleContext]) -> bool:
        return _policy_applies(contexts)

    def check_project(self,
                      contexts: Sequence[ModuleContext]) -> Iterator[Finding]:
        state = project_state(contexts)
        if state is None:
            return
        policy, graph, analysis = state.policy, state.graph, state.analysis

        # (layer, effect) -> candidate functions carrying it
        candidates: dict[tuple[str, str], set[str]] = {}
        for qname, info in analysis.info.items():
            if qname.endswith(".<module>"):
                continue  # import-time bodies are not budgeted entry points
            layer = policy.layer_of(graph.functions[qname].module)
            if layer is None or not layer.forbid:
                continue
            for effect in info.effects:
                if effect in layer.forbid:
                    candidates.setdefault(
                        (layer.name, effect), set()).add(qname)

        callers = graph.callers_of()
        for (layer_name, effect), group in sorted(candidates.items()):
            # report only the *outermost* carriers: candidates no other
            # candidate (same layer+effect) calls — i.e. the entry points
            # a reader of this layer actually hits.
            outermost = sorted(
                q for q in group
                if not (callers.get(q, set()) & group)
            )
            if not outermost:
                # every candidate sits inside a call cycle: pick a
                # deterministic representative rather than staying silent
                outermost = [min(group)]
            for qname in outermost:
                if policy.waived(self.rule_id, qname, effect):
                    continue
                node = graph.functions[qname]
                chain = analysis.effect_chain(qname, effect)
                seed = analysis.seed_of(qname, effect)
                seed_txt = f" (seed: {seed.call})" if seed else ""
                how = (f"via {_chain_text(chain)}" if len(chain) > 1
                       else "intrinsically")
                yield Finding(
                    path=node.path, line=node.lineno, col=1,
                    rule_id=self.rule_id,
                    message=(f"function {qname} in layer {layer_name!r} "
                             f"carries forbidden effect {effect!r} "
                             f"{how}{seed_txt}"),
                )


# -- RPR010 -----------------------------------------------------------------
@register_checker
class WorkspaceAllocChecker(ProjectChecker):
    """RPR010: hot perf modules allocate through the workspace arena."""

    rule_id = "RPR010"
    title = "workspace-alloc-discipline: hot paths use the arena"

    def applies(self, contexts: Sequence[ModuleContext]) -> bool:
        return _policy_applies(contexts)

    def check_project(self,
                      contexts: Sequence[ModuleContext]) -> Iterator[Finding]:
        state = project_state(contexts)
        if state is None:
            return
        policy, graph, analysis = state.policy, state.graph, state.analysis
        if not policy.hot:
            return

        for qname in sorted(graph.functions):
            node = graph.functions[qname]
            if (not policy.in_hot_path(node.module)
                    or policy.in_arena(node.module)
                    or qname.endswith(".<module>")):
                continue
            info = analysis.info[qname]
            if "alloc" not in info.effects:
                continue
            if policy.waived(self.rule_id, qname, "alloc"):
                continue
            own = info.seeds.get("alloc", [])
            if own:
                for seed in own:
                    yield Finding(
                        path=seed.path, line=seed.lineno, col=1,
                        rule_id=self.rule_id,
                        message=(f"hot-path function {qname} allocates via "
                                 f"{seed.call}; use the workspace arena "
                                 f"(ws.buffer/ws.zeros) or add an "
                                 f"'# effect-ok:' waiver"),
                    )
                continue
            # transitive: flag only where allocation *enters* the hot
            # set — the via-callee is outside hot (and outside arena)
            nxt = info.via.get("alloc")
            if nxt is None:
                continue
            nxt_module = graph.functions[nxt].module
            if policy.in_hot_path(nxt_module) \
                    and not policy.in_arena(nxt_module):
                continue  # the callee gets its own, closer finding
            chain = analysis.effect_chain(qname, "alloc")
            seed = analysis.seed_of(qname, "alloc")
            seed_txt = f" (seed: {seed.call})" if seed else ""
            yield Finding(
                path=node.path, line=node.lineno, col=1,
                rule_id=self.rule_id,
                message=(f"hot-path function {qname} allocates "
                         f"transitively via {_chain_text(chain)}"
                         f"{seed_txt}; route through the workspace arena"),
            )
