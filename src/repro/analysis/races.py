"""The ``repro races`` subcommand: drive the concurrency verifier.

Thin, testable functions over :mod:`repro.analysis.concurrency` with the
lint exit-code contract (0 clean / 1 findings / 2 internal error):

* :func:`races_check` — run RPR014/15/16 only, plus validation that
  every ``[concurrency]`` policy name resolves in the analyzed tree;
* :func:`races_show` — print the discovered thread contexts, locks,
  per-field lockset verdicts and the lock-order graph;
* :func:`races_snapshot` — write the committed ``CONCURRENCY.json``;
* :func:`races_diff` — compare current state against the snapshot;
  **new** lines fail (exit 1) so concurrency-surface growth must be
  reviewed, removals are informational (mirrors ``repro arch diff``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Sequence

from ..errors import ReproError
from .concurrency import (
    DEFAULT_SNAPSHOT,
    RACE_RULES,
    ConcurrencyAnalysis,
    conc_state,
    diff_snapshots,
    load_snapshot,
    write_snapshot,
)
from .framework import iter_python_files, parse_cached
from .lint import (
    LINT_EXIT_CLEAN,
    LINT_EXIT_FINDINGS,
    LINT_EXIT_INTERNAL,
    run_lint,
)
from .policy import DEFAULT_POLICY

#: Default tree the races tooling analyzes.
DEFAULT_PATHS = ("src/repro",)

Echo = Callable[[str], None]


def _build(paths: Sequence[str]) -> ConcurrencyAnalysis:
    contexts = []
    for file in iter_python_files(paths):
        try:
            contexts.append(parse_cached(file.read_text(), str(file)))
        except SyntaxError as exc:
            raise ReproError(f"cannot parse {file}: {exc}") from exc
    analysis = conc_state(contexts)
    if analysis is None:
        raise ReproError(f"no python files under {', '.join(paths)}")
    return analysis


def _policy_issues(analysis: ConcurrencyAnalysis) -> list[str]:
    """Policy names that do not resolve against the analyzed tree.

    The checkers silently ignore these (fixture trees legitimately lack
    the repo's entries); the CLI is where the real tree is analyzed, so
    here they are errors — a stale name means a rename silently shrank
    the verified surface.
    """
    issues = list(analysis.entry_issues)
    if analysis.policy is None:
        return issues
    lock_keys = {k for k in analysis.sync_kinds if analysis._is_lock(k)}
    for name in analysis.policy.conc_serialized:
        if name not in analysis.graph.functions:
            issues.append(name)
    for lp in analysis.policy.lock_policies:
        if lp.name not in lock_keys:
            issues.append(lp.name)
    return issues


def races_check(paths: Sequence[str] = DEFAULT_PATHS,
                echo: Echo = print) -> int:
    """Run the concurrency rules only; lint exit-code contract."""
    if not Path(DEFAULT_POLICY).is_file():
        echo(f"races: no {DEFAULT_POLICY} in the working directory")
        return LINT_EXIT_INTERNAL
    try:
        issues = _policy_issues(_build(paths))
    except ReproError as exc:
        echo(f"races: {exc}")
        return LINT_EXIT_INTERNAL
    if issues:
        for name in issues:
            echo(f"races: [concurrency] policy name {name!r} does not "
                 f"resolve in the analyzed tree (renamed or removed?)")
        return LINT_EXIT_FINDINGS
    return run_lint(list(paths), select=list(RACE_RULES), echo=echo)


def races_show(paths: Sequence[str] = DEFAULT_PATHS,
               echo: Echo = print) -> int:
    """Print thread contexts, locks, field verdicts and lock order."""
    try:
        analysis = _build(paths)
    except ReproError as exc:
        echo(f"races: {exc}")
        return LINT_EXIT_INTERNAL
    echo(f"thread contexts ({len(analysis.contexts)}):")
    for name in sorted(analysis.contexts):
        ctx = analysis.contexts[name]
        tags = []
        if ctx.multi:
            tags.append("multi")
        if ctx.isolated:
            tags.append("isolated")
        tag = f" [{', '.join(tags)}]" if tags else ""
        echo(f"  {name}{tag}: {len(ctx.roots)} root(s), "
             f"{len(ctx.reach)} reachable function(s)")
    locks = sorted(k for k in analysis.sync_kinds if analysis._is_lock(k))
    echo(f"locks ({len(locks)}):")
    for lock in locks:
        echo(f"  {lock} ({analysis.sync_kinds[lock]})")
    echo(f"shared-field verdicts ({len(analysis.verdicts)}):")
    for key in sorted(analysis.verdicts):
        v = analysis.verdicts[key]
        detail = ""
        if v.get("locks"):
            detail = " by " + ", ".join(v["locks"])
        elif v.get("guard"):
            detail = f" (guarded-by: {v['guard']} -- {v.get('reason', '')})"
        echo(f"  {key}: {v['verdict']}{detail}")
    echo(f"lock-order edges ({len(analysis.order_edges)}):")
    for (a, b), site in sorted(analysis.order_edges.items()):
        echo(f"  {a} -> {b}  ({site.path}:{site.lineno})")
    if analysis.order_cycles:
        for scc in analysis.order_cycles:
            echo(f"  CYCLE: {' <-> '.join(scc)}")
    return LINT_EXIT_CLEAN


def races_report(paths: Sequence[str] = DEFAULT_PATHS,
                 echo: Echo = print) -> int:
    """Emit the full machine-readable state as JSON (for CI artifacts)."""
    try:
        analysis = _build(paths)
    except ReproError as exc:
        echo(json.dumps({"error": str(exc)}))
        return LINT_EXIT_INTERNAL
    echo(json.dumps(analysis.snapshot_payload(), indent=2, sort_keys=True))
    return LINT_EXIT_CLEAN


def races_snapshot(paths: Sequence[str] = DEFAULT_PATHS,
                   output: str = DEFAULT_SNAPSHOT,
                   echo: Echo = print) -> int:
    try:
        analysis = _build(paths)
        payload = write_snapshot(analysis, output)
    except ReproError as exc:
        echo(f"races: {exc}")
        return LINT_EXIT_INTERNAL
    echo(f"wrote concurrency snapshot ({len(payload['fields'])} field(s), "
         f"{len(payload['contexts'])} context(s)) to {output}")
    return LINT_EXIT_CLEAN


def races_diff(paths: Sequence[str] = DEFAULT_PATHS,
               against: str = DEFAULT_SNAPSHOT,
               echo: Echo = print) -> int:
    """Diff current concurrency state vs the committed snapshot.

    Exit 1 when any field/edge/context line is *new* (review required;
    rerun ``repro races snapshot`` after accepting).  Removed lines are
    reported but do not fail.
    """
    try:
        analysis = _build(paths)
        old = load_snapshot(against)
    except (ReproError, OSError, ValueError) as exc:
        echo(f"races: {exc}")
        return LINT_EXIT_INTERNAL
    added, removed = diff_snapshots(old, analysis.snapshot_payload())
    for line in removed:
        echo(f"note: {line}")
    for line in added:
        echo(f"NEW: {line}")
    if added:
        echo(f"{len(added)} new concurrency fact(s) vs {against}; review "
             f"with `repro races show` and refresh the snapshot with "
             f"`repro races snapshot` once accepted")
        return LINT_EXIT_FINDINGS
    echo(f"concurrency state unchanged vs {against}"
         + (f" ({len(removed)} removal(s))" if removed else ""))
    return LINT_EXIT_CLEAN
