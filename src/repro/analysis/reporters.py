"""Text and JSON renderings of a lint run."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from .findings import Finding, Severity


def format_text(findings: Sequence[Finding], suppressed: int = 0) -> str:
    """One clickable ``path:line:col`` line per finding, plus a summary."""
    lines = [f.format() for f in findings]
    n_err = sum(1 for f in findings if f.severity is Severity.ERROR)
    n_warn = len(findings) - n_err
    summary = f"{n_err} error(s), {n_warn} warning(s)"
    if suppressed:
        summary += f", {suppressed} baseline-suppressed"
    if not findings:
        summary = "clean: " + summary
    lines.append(summary)
    return "\n".join(lines)


def format_json(findings: Sequence[Finding], suppressed: int = 0) -> str:
    """Machine-readable report (the CI job consumes this shape)."""
    by_rule = Counter(f.rule_id for f in findings)
    doc = {
        "findings": [f.as_dict() for f in findings],
        "summary": {
            "total": len(findings),
            "errors": sum(
                1 for f in findings if f.severity is Severity.ERROR
            ),
            "warnings": sum(
                1 for f in findings if f.severity is Severity.WARNING
            ),
            "suppressed": suppressed,
            "by_rule": dict(sorted(by_rule.items())),
        },
    }
    return json.dumps(doc, indent=2)
