"""Project-wide call-graph construction from ASTs (no imports executed).

The transitive rules (RPR008-RPR010, :mod:`repro.analysis.effects`) need
to know *who calls whom* across the whole tree, not just what one file
spells.  :func:`build_callgraph` turns the parsed
:class:`~repro.analysis.framework.ModuleContext` set into a
:class:`CallGraph`:

* **module naming** — a file's dotted module name is derived from its
  path relative to the last ``<root_package>/`` directory component
  (``src/repro/perf/raycast.py`` -> ``repro.perf.raycast``), so the
  graph works on the real tree, on scratch copies, and on synthetic
  fixtures alike.  Files outside the root package are ignored.
* **name resolution** — every module gets a symbol table of its defs,
  classes, and imports (relative imports absolutized against the
  module's package).  Dotted references are resolved through re-export
  chains (``repro.perf.raycast_model`` -> the def in
  ``repro.perf.raycast``) with a cycle guard.
* **method attribution** — ``self.f()`` / ``cls.f()`` resolve through
  the enclosing class and its first-party bases; ``x = Cls(...)`` then
  ``x.f()`` resolves through the local constructor type;
  ``Cls.f(...)`` and bare ``Cls(...)`` (-> ``Cls.__init__``) resolve
  directly.
* **honest failure** — calls the resolver cannot attribute (dynamic
  dispatch through registries, methods on parameters, ...) are recorded
  per-function in :attr:`FunctionNode.unresolved`; calls into
  stdlib/third-party code land in :attr:`FunctionNode.external` so the
  effect engine can match them against its intrinsic patterns.  Nothing
  is silently dropped.

Module-level statements are attributed to a pseudo-function named
``<module>`` per module, so import-time calls (registry population,
table precomputation) stay visible in exports without polluting the
per-function budget checks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .framework import ModuleContext

#: Default first-party root package.
ROOT_PACKAGE = "repro"

#: Pseudo-function holding a module's top-level statements.
MODULE_BODY = "<module>"


def module_name_for(path: str, root_package: str = ROOT_PACKAGE) -> str | None:
    """Dotted module name for ``path``, or ``None`` if outside the root.

    The *last* path component equal to ``root_package`` anchors the
    name, so ``/tmp/x/repro/kfusion/a.py`` -> ``repro.kfusion.a`` and
    ``src/repro/cli.py`` -> ``repro.cli``.  ``__init__.py`` names the
    package itself.
    """
    parts = Path(path).parts
    if not parts or not parts[-1].endswith(".py"):
        return None
    stem = parts[-1][:-3]
    dirs = parts[:-1]
    anchor = None
    for i in range(len(dirs) - 1, -1, -1):
        if dirs[i] == root_package:
            anchor = i
            break
    if anchor is None:
        return None
    mods = list(dirs[anchor:])
    if stem != "__init__":
        mods.append(stem)
    return ".".join(mods)


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    target: str  #: textual target (dotted, best effort)
    lineno: int


@dataclass
class FunctionNode:
    """One function (or method, or the ``<module>`` pseudo-function)."""

    qname: str
    module: str
    path: str
    lineno: int
    #: resolved first-party callees (qnames into :attr:`CallGraph.functions`)
    calls: set[str] = field(default_factory=set)
    #: resolved callees with their call sites (concurrency analysis needs
    #: per-site lock contexts; ``calls`` is the deduplicated view)
    resolved_sites: list[CallSite] = field(default_factory=list)
    #: dotted stdlib/third-party calls, with sites (effect-seed matching)
    external: list[CallSite] = field(default_factory=list)
    #: calls we could not attribute — recorded, never dropped
    unresolved: list[CallSite] = field(default_factory=list)
    #: the function's AST (module AST for ``<module>`` pseudo-functions)
    ast_node: ast.AST | None = field(default=None, repr=False, compare=False)


@dataclass
class ClassNode:
    """A class definition: its methods and (dotted) base names."""

    qname: str
    module: str
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)
    #: attribute name -> class qname inferred from ``self._x = Cls(...)``
    #: assignments in method bodies ("" marks conflicting assignments)
    attr_types: dict[str, str] = field(default_factory=dict)
    #: attribute name -> element class qname from container annotations
    #: (``self._xs: dict[str, Cls] = {}`` / ``list[Cls]``)
    attr_elem_types: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class ImportEdge:
    """One first-party import statement (eager or function-nested)."""

    from_module: str
    target: str  #: absolute dotted target (module or symbol)
    path: str
    lineno: int
    lazy: bool  #: imported inside a function body (deferred seam)


class CallGraph:
    """The resolved whole-program graph."""

    def __init__(self, root_package: str = ROOT_PACKAGE):
        self.root_package = root_package
        self.modules: dict[str, str] = {}  #: module -> path
        self.sources: dict[str, list[str]] = {}  #: path -> source lines
        self.functions: dict[str, FunctionNode] = {}
        self.classes: dict[str, ClassNode] = {}
        self.import_edges: list[ImportEdge] = []
        self._symbols: dict[str, dict[str, str]] = {}
        #: module-level ``x: ContextVar[Cls]``-style element annotations
        self.module_elem_types: dict[str, dict[str, str]] = {}

    # -- symbol resolution --------------------------------------------------
    def resolve_function(self, dotted: str) -> str | None:
        """Resolve a dotted first-party reference to a function qname."""
        target = self._resolve(dotted)
        if target is None:
            return None
        kind, qname = target
        if kind == "func":
            return qname
        if kind == "class":
            init = self.classes[qname].methods.get("__init__")
            if init is not None:
                return init
            # constructor of an un-__init__'d (e.g. dataclass) class: no
            # body of its own to analyze.
            return None
        return None

    def resolve_class(self, dotted: str) -> str | None:
        target = self._resolve(dotted)
        if target is not None and target[0] == "class":
            return target[1]
        return None

    def _resolve(self, dotted: str,
                 _seen: frozenset = frozenset()) -> tuple[str, str] | None:
        """``("func"|"class"|"module", qname)`` for a dotted reference."""
        if dotted in _seen or len(_seen) > 32:
            return None
        _seen = _seen | {dotted}
        if dotted in self.functions:
            return ("func", dotted)
        if dotted in self.classes:
            return ("class", dotted)
        # Longest module prefix, then walk the attribute chain through
        # symbol tables (following re-exports) and class members.
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix not in self.modules:
                continue
            rest = parts[cut:]
            if not rest:
                return ("module", prefix)
            head, tail = rest[0], rest[1:]
            # submodule takes priority over a same-named symbol
            if f"{prefix}.{head}" in self.modules and tail:
                continue  # a longer cut already tried; unreachable, but safe
            symbol = self._symbols.get(prefix, {}).get(head)
            if symbol is None:
                return None
            resolved = self._resolve(symbol, _seen)
            if resolved is None:
                return None
            if not tail:
                return resolved
            kind, qname = resolved
            if kind == "class":
                method = self._class_method(qname, ".".join(tail))
                if method is not None:
                    return ("func", method)
                return None
            if kind == "module":
                return self._resolve(f"{qname}.{'.'.join(tail)}", _seen)
            return None
        return None

    def attr_type(self, class_qname: str, attr: str,
                  _depth: int = 0) -> str | None:
        """Class qname of ``self.<attr>`` from constructor assignments."""
        return self._attr_lookup(class_qname, attr, "attr_types", _depth)

    def attr_elem_type(self, class_qname: str, attr: str,
                       _depth: int = 0) -> str | None:
        """Element class of a container attribute (``dict[str, Cls]``)."""
        return self._attr_lookup(class_qname, attr, "attr_elem_types", _depth)

    def _attr_lookup(self, class_qname: str, attr: str, table: str,
                     _depth: int = 0) -> str | None:
        if _depth > 16:
            return None
        node = self.classes.get(class_qname)
        if node is None:
            return None
        typed = getattr(node, table).get(attr)
        if typed:
            return typed
        if typed == "":
            return None  # conflicting assignments: honest failure
        for base in node.bases:
            base_cls = self.resolve_class(base)
            if base_cls is not None:
                found = self._attr_lookup(base_cls, attr, table, _depth + 1)
                if found is not None:
                    return found
        return None

    def _class_method(self, class_qname: str, attr: str,
                      _depth: int = 0) -> str | None:
        """Look up ``attr`` as a method on the class or first-party bases."""
        if "." in attr or _depth > 16:
            return None
        node = self.classes.get(class_qname)
        if node is None:
            return None
        if attr in node.methods:
            return node.methods[attr]
        for base in node.bases:
            base_cls = self.resolve_class(base)
            if base_cls is not None:
                found = self._class_method(base_cls, attr, _depth + 1)
                if found is not None:
                    return found
        return None

    # -- derived views -------------------------------------------------------
    def callers_of(self) -> dict[str, set[str]]:
        """Reverse edge map: callee qname -> caller qnames."""
        rev: dict[str, set[str]] = {q: set() for q in self.functions}
        for qname, node in self.functions.items():
            for callee in node.calls:
                rev.setdefault(callee, set()).add(qname)
        return rev

    def module_call_edges(self) -> set[tuple[str, str]]:
        """Distinct cross-module ``(caller_module, callee_module)`` pairs."""
        edges = set()
        for node in self.functions.values():
            for callee in node.calls:
                target = self.functions[callee]
                if target.module != node.module:
                    edges.add((node.module, target.module))
        return edges


def _package_of(module: str, is_package: bool) -> list[str]:
    parts = module.split(".")
    return parts if is_package else parts[:-1]


def _absolutize(module: str, is_package: bool, node: ast.ImportFrom) -> str:
    """Absolute dotted module targeted by an ``ImportFrom``."""
    if not node.level:
        return node.module or ""
    package = _package_of(module, is_package)
    base = package[: len(package) - (node.level - 1)]
    if node.module:
        base = base + [node.module]
    return ".".join(base)


class _ModuleHarvest:
    """Pass 1 state for one module: symbols, defs, import edges."""

    def __init__(self, ctx: ModuleContext, module: str, is_package: bool):
        self.ctx = ctx
        self.module = module
        self.is_package = is_package
        self.symbols: dict[str, str] = {}
        #: (ast function node, enclosing-class qname or None, qname)
        self.function_bodies: list[tuple[ast.AST, str | None, str]] = []


def _harvest_module(graph: CallGraph, harvest: _ModuleHarvest) -> None:
    ctx, module = harvest.ctx, harvest.module
    root_prefix = graph.root_package + "."

    def note_import(node: ast.AST, target: str, lazy: bool) -> None:
        if target == graph.root_package or target.startswith(root_prefix):
            graph.import_edges.append(ImportEdge(
                from_module=module, target=target, path=ctx.path,
                lineno=node.lineno, lazy=lazy,
            ))

    def bind_import(node: ast.AST, symbols: dict[str, str],
                    lazy: bool) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                symbols[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname
                    else alias.name.split(".")[0])
                note_import(node, alias.name, lazy)
        elif isinstance(node, ast.ImportFrom):
            base = _absolutize(module, harvest.is_package, node)
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                symbols[alias.asname or alias.name] = target
                note_import(node, target, lazy)

    def walk_imports(root: ast.AST, lazy: bool) -> None:
        for node in ast.iter_child_nodes(root):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # function-nested imports: lazy edges only; the names
                # are function-local and handled during call resolution.
                for inner in ast.walk(node):
                    bind_import(inner, {}, lazy=True)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                bind_import(node, harvest.symbols, lazy)
            else:
                walk_imports(node, lazy)

    # module-level imports (including under ``if TYPE_CHECKING:`` etc.)
    walk_imports(ctx.tree, lazy=False)

    def add_function(node, class_qname: str | None, scope: str) -> str:
        qname = f"{scope}.{node.name}"
        graph.functions[qname] = FunctionNode(
            qname=qname, module=module, path=ctx.path, lineno=node.lineno,
            ast_node=node)
        harvest.function_bodies.append((node, class_qname, qname))
        return qname

    def add_class(node: ast.ClassDef, scope: str) -> None:
        qname = f"{scope}.{node.name}"
        bases = []
        for b in node.bases:
            dotted = _dotted_text(b)
            if dotted is not None:
                bases.append(_expand_alias(harvest.symbols, dotted))
        cls = ClassNode(qname=qname, module=module, bases=bases)
        graph.classes[qname] = cls
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[stmt.name] = add_function(stmt, qname, qname)

    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            harvest.symbols[node.name] = add_function(node, None, module)
        elif isinstance(node, ast.ClassDef):
            add_class(node, module)
            harvest.symbols[node.name] = f"{module}.{node.name}"

    # the module body pseudo-function (import-time statements)
    body_qname = f"{module}.{MODULE_BODY}"
    graph.functions[body_qname] = FunctionNode(
        qname=body_qname, module=module, path=ctx.path, lineno=1,
        ast_node=ctx.tree)
    harvest.function_bodies.append((ctx.tree, None, body_qname))


def _dotted_text(node: ast.AST) -> str | None:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _expand_alias(symbols: dict[str, str], dotted: str) -> str:
    head, _, rest = dotted.partition(".")
    head = symbols.get(head, head)
    return f"{head}.{rest}" if rest else head


def _annotation_class(graph: CallGraph, symbols: dict[str, str],
                      node: ast.AST | None) -> str | None:
    """Resolve a simple annotation expression to a first-party class.

    Handles ``Cls``, ``pkg.Cls``, ``Cls | None`` unions, and quoted
    forward references; anything fancier resolves to ``None``.
    """
    if node is None:
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return (_annotation_class(graph, symbols, node.left)
                or _annotation_class(graph, symbols, node.right))
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
        return _annotation_class(graph, symbols, node)
    dotted = _dotted_text(node)
    if dotted is None:
        return None
    return graph.resolve_class(_expand_alias(symbols, dotted))


def _container_elem_annotation(graph: CallGraph, symbols: dict[str, str],
                               node: ast.AST | None) -> str | None:
    """Element class of a ``dict[K, V]`` / ``list[V]``-style annotation.

    For mappings the *value* type is the element (``.values()`` /
    subscript reads are what the resolver types through it).
    """
    if not isinstance(node, ast.Subscript):
        return None
    base = _dotted_text(node.value)
    if base is None:
        return None
    base = base.rpartition(".")[2].lower()
    sl = node.slice
    if base == "dict":
        if isinstance(sl, ast.Tuple) and len(sl.elts) == 2:
            return _annotation_class(graph, symbols, sl.elts[1])
        return None
    if base in ("list", "set", "frozenset", "deque", "sequence",
                "iterable", "tuple", "contextvar"):
        elt = (sl.elts[0] if isinstance(sl, ast.Tuple) and sl.elts else sl)
        return _annotation_class(graph, symbols, elt)
    return None


def _own_statements(root: ast.AST) -> Iterable[ast.AST]:
    """Walk ``root``'s body without descending into nested def/class.

    For a function root, decorators / parameter defaults / annotations
    are excluded: they evaluate at *definition* time, not call time.
    """
    stack = list(getattr(root, "body", None) or ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def iter_own_nodes(func: ast.AST) -> Iterable[ast.AST]:
    """Public alias of the own-body walk (used by the effect seeder)."""
    return _own_statements(func)


def _harvest_attr_types(graph: CallGraph, harvest: _ModuleHarvest) -> None:
    """Record ``self._x = Cls(...)`` attribute types on the class node.

    Runs after every module's symbol table exists (cross-module
    constructors resolve) but before call resolution, so ``self._x.m()``
    attributes to ``Cls.m`` regardless of method definition order.
    Conflicting assignments of the same attribute to different classes
    poison the entry ("" -> honest resolution failure).
    """
    symbols = harvest.symbols
    # Module-level ``x: ContextVar[Cls] = ...`` element annotations let
    # ``x.get()`` results type as Cls in every function of the module.
    for stmt in harvest.ctx.tree.body:
        if not (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)):
            continue
        elem = _container_elem_annotation(graph, symbols, stmt.annotation)
        if elem is not None:
            table = graph.module_elem_types.setdefault(harvest.module, {})
            table[stmt.target.id] = elem
    for func, class_qname, _qname in list(harvest.function_bodies):
        if class_qname is None:
            continue
        cls_node = graph.classes.get(class_qname)
        if cls_node is None:
            continue
        def note(table: dict[str, str], attr: str, attr_cls: str) -> None:
            prev = table.get(attr)
            if prev is None:
                table[attr] = attr_cls
            elif prev != attr_cls:
                table[attr] = ""

        for stmt in _own_statements(func):
            if isinstance(stmt, ast.AnnAssign):
                target = stmt.target
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                elem = _container_elem_annotation(
                    graph, symbols, stmt.annotation)
                if elem is not None:
                    note(cls_node.attr_elem_types, target.attr, elem)
                    continue
                direct = _annotation_class(graph, symbols, stmt.annotation)
                if direct is not None:
                    note(cls_node.attr_types, target.attr, direct)
                continue
            if not (isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Call)):
                continue
            ctor = _dotted_text(stmt.value.func)
            if ctor is None:
                continue
            attr_cls = graph.resolve_class(_expand_alias(symbols, ctor))
            if attr_cls is None:
                continue
            for target in stmt.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    note(cls_node.attr_types, target.attr, attr_cls)


def _resolve_function_calls(graph: CallGraph, harvest: _ModuleHarvest,
                            func: ast.AST, class_qname: str | None,
                            qname: str) -> None:
    node_out = graph.functions[qname]
    symbols = harvest.symbols
    module = harvest.module
    root_prefix = graph.root_package + "."

    # Local scope: parameters, assigned names, nested defs, local
    # imports, constructor types (``x = Cls(...)`` -> x: Cls).
    local_names: set[str] = set()
    nested_funcs: dict[str, str] = {}
    local_types: dict[str, str] = {}
    local_imports: dict[str, str] = {}
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = func.args
        for a in (args.posonlyargs + args.args + args.kwonlyargs):
            local_names.add(a.arg)
        if args.vararg:
            local_names.add(args.vararg.arg)
        if args.kwarg:
            local_names.add(args.kwarg.arg)
    for stmt in _own_statements(func):
        if isinstance(stmt, ast.Import):
            # edges were recorded (lazily) during harvest; bind names only
            for alias in stmt.names:
                local_imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname
                    else alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            base = _absolutize(module, harvest.is_package, stmt)
            for alias in stmt.names:
                if alias.name != "*":
                    local_imports[alias.asname or alias.name] = (
                        f"{base}.{alias.name}" if base else alias.name)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # module-level defs are already module symbols
            nested_qname = f"{qname}.<locals>.{stmt.name}"
            graph.functions[nested_qname] = FunctionNode(
                qname=nested_qname, module=module, path=harvest.ctx.path,
                lineno=stmt.lineno, ast_node=stmt)
            harvest.function_bodies.append((stmt, class_qname, nested_qname))
            nested_funcs[stmt.name] = nested_qname
            local_names.add(stmt.name)
        elif isinstance(stmt, ast.Name) and isinstance(
                stmt.ctx, (ast.Store, ast.Del)):
            local_names.add(stmt.id)

    # Pass 2 — local types, with names and local imports fully known:
    # parameter annotations, constructor assignments, and element reads
    # out of container-annotated attributes.
    def expand(dotted: str) -> str:
        if dotted.partition(".")[0] in local_imports:
            return _expand_alias(local_imports, dotted)
        return _expand_alias(symbols, dotted)

    scope = dict(symbols)
    scope.update(local_imports)

    def value_type(value: ast.AST) -> str | None:
        if isinstance(value, ast.Call):
            dotted = _dotted_text(value.func)
            if dotted is None:
                return None
            parts = dotted.split(".")
            # self._xs.get(k) / self._xs.pop(k) on an annotated container
            if (class_qname is not None and parts[0] == "self"
                    and len(parts) == 3 and parts[2] in ("get", "pop")):
                return graph.attr_elem_type(class_qname, parts[1])
            # _current.get() on a module-level annotated ContextVar
            if (len(parts) == 2 and parts[1] == "get"
                    and parts[0] not in local_names):
                elem = graph.module_elem_types.get(module, {}).get(parts[0])
                if elem is not None:
                    return elem
            return graph.resolve_class(expand(dotted))
        if isinstance(value, ast.Subscript):
            v = value.value
            if (class_qname is not None and isinstance(v, ast.Attribute)
                    and isinstance(v.value, ast.Name)
                    and v.value.id == "self"):
                return graph.attr_elem_type(class_qname, v.attr)
        return None

    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = func.args
        for a in (args.posonlyargs + args.args + args.kwonlyargs):
            cls = _annotation_class(graph, scope, a.annotation)
            if cls is not None:
                local_types[a.arg] = cls
    for stmt in _own_statements(func):
        if (isinstance(stmt, ast.Assign)
                and any(isinstance(t, ast.Name) for t in stmt.targets)):
            cls = value_type(stmt.value)
            if cls is not None:
                # every Name target shares the value type
                # (``window = self.rate_windows[name] = RateWindow(...)``)
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        local_types[target.id] = cls
        elif isinstance(stmt, ast.For):
            iter_expr = stmt.iter
            if (isinstance(iter_expr, ast.Call)
                    and isinstance(iter_expr.func, ast.Name)
                    and iter_expr.func.id in ("list", "sorted", "tuple")
                    and iter_expr.args):
                iter_expr = iter_expr.args[0]
            if not isinstance(iter_expr, ast.Call):
                continue
            dotted = _dotted_text(iter_expr.func)
            parts = dotted.split(".") if dotted else []
            if not (class_qname is not None and len(parts) == 3
                    and parts[0] == "self"
                    and parts[2] in ("values", "items")):
                continue
            elem = graph.attr_elem_type(class_qname, parts[1])
            if elem is None:
                continue
            target = stmt.target
            if parts[2] == "values" and isinstance(target, ast.Name):
                local_types[target.id] = elem
            elif (parts[2] == "items" and isinstance(target, ast.Tuple)
                  and len(target.elts) == 2
                  and isinstance(target.elts[1], ast.Name)):
                local_types[target.elts[1].id] = elem

    def record(call: ast.Call) -> None:
        dotted = _dotted_text(call.func)
        if dotted is None:
            node_out.unresolved.append(CallSite("<expression>", call.lineno))
            return
        head, _, rest = dotted.partition(".")

        def resolved(target_qname: str) -> None:
            node_out.calls.add(target_qname)
            node_out.resolved_sites.append(
                CallSite(target_qname, call.lineno))

        # self.m() / cls.m() -> enclosing class attribution
        if head in ("self", "cls") and class_qname is not None and rest:
            method = graph._class_method(class_qname, rest)
            if method is None and "." in rest:
                # self._x.m() through a constructor-typed attribute
                attr, _, chain = rest.partition(".")
                attr_cls = graph.attr_type(class_qname, attr)
                if attr_cls is not None:
                    method = graph._class_method(attr_cls, chain)
            if method is not None:
                resolved(method)
            else:
                node_out.unresolved.append(CallSite(dotted, call.lineno))
            return
        # x = Cls(...); x.m()
        if head in local_types and rest:
            method = graph._class_method(local_types[head], rest)
            if method is not None:
                resolved(method)
            else:
                node_out.unresolved.append(CallSite(dotted, call.lineno))
            return
        # bare name bound to a nested def
        if not rest and head in nested_funcs:
            resolved(nested_funcs[head])
            return
        # function-local imports take priority over module symbols
        if head in local_imports:
            expanded = _expand_alias(local_imports, dotted)
        elif head in local_names and head not in symbols:
            # names shadowed by locals are not module symbols
            node_out.unresolved.append(CallSite(dotted, call.lineno))
            return
        else:
            expanded = _expand_alias(symbols, dotted)
        target = graph.resolve_function(expanded)
        if target is not None:
            resolved(target)
            return
        if (expanded == graph.root_package
                or expanded.startswith(root_prefix)):
            # first-party but unattributable (re-export we cannot chase,
            # dynamic member, class without __init__ body...)
            if graph.resolve_class(expanded) is None:
                node_out.unresolved.append(CallSite(expanded, call.lineno))
            return
        node_out.external.append(CallSite(expanded, call.lineno))

    for stmt in _own_statements(func):
        if isinstance(stmt, ast.Call):
            record(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            # ``with Cls(...):`` runs Cls.__enter__/__exit__ — edges the
            # bare Call walk cannot see (the protocol calls are implicit).
            for item in stmt.items:
                ce = item.context_expr
                if not isinstance(ce, ast.Call):
                    continue
                dotted = _dotted_text(ce.func)
                if dotted is None:
                    continue
                cls = graph.resolve_class(expand(dotted))
                if cls is None:
                    continue
                for proto in ("__enter__", "__exit__"):
                    method = graph._class_method(cls, proto)
                    if method is not None:
                        node_out.calls.add(method)
                        node_out.resolved_sites.append(
                            CallSite(method, ce.lineno))


def build_callgraph(contexts: Sequence[ModuleContext],
                    root_package: str = ROOT_PACKAGE) -> CallGraph:
    """Build the whole-program graph from parsed module contexts."""
    graph = CallGraph(root_package)
    harvests: list[_ModuleHarvest] = []
    for ctx in contexts:
        module = module_name_for(ctx.path, root_package)
        if module is None or module in graph.modules:
            continue
        graph.modules[module] = ctx.path
        graph.sources[ctx.path] = ctx.lines
        harvests.append(_ModuleHarvest(
            ctx, module, is_package=Path(ctx.path).name == "__init__.py"))
    for harvest in harvests:
        _harvest_module(graph, harvest)
        graph._symbols[harvest.module] = harvest.symbols
    for harvest in harvests:
        _harvest_attr_types(graph, harvest)
    for harvest in harvests:
        # function_bodies grows as nested defs are discovered: index loop.
        i = 0
        while i < len(harvest.function_bodies):
            func, class_qname, qname = harvest.function_bodies[i]
            _resolve_function_calls(graph, harvest, func, class_qname, qname)
            i += 1
    return graph
