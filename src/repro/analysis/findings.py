"""Finding objects — what every checker produces.

A :class:`Finding` pins a rule violation to a ``path:line:col`` location
with a rule id (``RPR001``...), a severity, and a human message.  The
*fingerprint* deliberately omits the line number so that committed
baselines (:mod:`repro.analysis.baseline`) survive unrelated edits above
a suppressed finding.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is; errors fail the lint run, warnings do not
    (both are reported, and both participate in baselines)."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: file the finding is in, as given to the analyzer
            (kept verbatim so output locations are clickable).
        line: 1-based line number.
        col: 1-based column number.
        rule_id: ``"RPR001"``..., or ``"RPR000"`` for unparseable files.
        message: human-readable description of the violation.
        severity: :class:`Severity`; errors make ``repro lint`` exit 1.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: Severity = field(default=Severity.ERROR)

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used by baseline suppression."""
        return f"{self.rule_id}::{self.path}::{self.message}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)

    def format(self) -> str:
        """The one-line text-reporter rendering."""
        return (f"{self.path}:{self.line}:{self.col}: {self.rule_id} "
                f"[{self.severity}] {self.message}")

    def as_dict(self) -> dict:
        """JSON-reporter rendering."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }
