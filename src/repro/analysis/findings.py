"""Finding objects — what every checker produces.

A :class:`Finding` pins a rule violation to a ``path:line:col`` location
with a rule id (``RPR001``...), a severity, and a human message.  The
*fingerprint* deliberately omits the line number so that committed
baselines (:mod:`repro.analysis.baseline`) survive unrelated edits above
a suppressed finding.  Version-2 fingerprints go further and anchor on
the enclosing symbol plus a hash of the flagged source line — messages
that merely *mention* a line number (or any other location detail) no
longer churn the committed baseline when code moves.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is; errors fail the lint run, warnings do not
    (both are reported, and both participate in baselines)."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: file the finding is in, as given to the analyzer
            (kept verbatim so output locations are clickable).
        line: 1-based line number.
        col: 1-based column number.
        rule_id: ``"RPR001"``..., or ``"RPR000"`` for unparseable files.
        message: human-readable description of the violation.
        severity: :class:`Severity`; errors make ``repro lint`` exit 1.
        symbol: qualified name of the enclosing function/class at the
            finding's line (``"KinectFusion.process"``), or ``""`` at
            module level.  Filled in by
            :meth:`~repro.analysis.framework.ModuleContext.finding`.
        content: the flagged source line, stripped; ``""`` when the
            producer has no source at hand (the fingerprint then falls
            back to hashing the message).
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: Severity = field(default=Severity.ERROR)
    symbol: str = ""
    content: str = ""

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used by baseline suppression (v2).

        ``rule::path::symbol::sha1(content or message)[:12]`` — anchored
        on *what* is flagged (rule, file, enclosing symbol, the line's
        text), never on *where* in the file it sits, so edits elsewhere
        — even ones that renumber every line — do not churn a committed
        baseline.
        """
        anchor = self.content or self.message
        digest = hashlib.sha1(anchor.encode()).hexdigest()[:12]
        return f"{self.rule_id}::{self.path}::{self.symbol}::{digest}"

    @property
    def fingerprint_v1(self) -> str:
        """The legacy (version-1 baseline) fingerprint, kept so old
        baselines still apply and ``--migrate-baseline`` can match."""
        return f"{self.rule_id}::{self.path}::{self.message}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)

    def format(self) -> str:
        """The one-line text-reporter rendering."""
        return (f"{self.path}:{self.line}:{self.col}: {self.rule_id} "
                f"[{self.severity}] {self.message}")

    def as_dict(self) -> dict:
        """JSON-reporter rendering."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }
