"""Whole-program lockset concurrency verification: rules RPR014-016.

The serve layer runs a scheduler thread mutating sessions while caller
threads poll ``stats()`` and push frames through a ``Condition``-guarded
transport; ``repro.jobs`` owns worker *processes*.  This module proves
the locking discipline of that code statically, in the style of the S18
effect engine (and composing with it):

* **Thread-root discovery** — every ``threading.Thread(target=...)`` /
  ``Timer`` spawn contributes a background *thread context* rooted at
  the resolved target; the spawning function keeps running concurrently,
  so the spawner (plus every public method of its class, and any extra
  entry the ``[concurrency]`` policy table declares) roots the
  multi-threaded *callers* context.  ``...Process(target=...)`` spawns
  root *isolated* contexts: a separate address space never races with
  in-process state.
* **RPR014 shared-state lockset analysis** (Eraser-style) — for every
  ``self._x`` / module-global written in multi-thread-reachable code,
  infer the locks held at each access: lexically through ``with
  self._lock:`` blocks and ``acquire()``/``release()`` pairs, and
  interprocedurally through a *must-hold* fixpoint over the call graph
  (the intersection, over all participating call sites, of the caller's
  must-set plus the locks held at the site).  A field with racing
  accesses needs a non-empty common lockset, a ``[[lock]]`` ``guards``
  declaration, or an explicit ``# guarded-by: <target> -- <reason>``
  annotation; violations carry the full forcing chain for both sides.
* **RPR015 lock-order discipline** — every acquisition while other
  locks are (lexically or interprocedurally, via *may-hold*) held adds
  an edge to the lock-order graph; cycles are potential deadlocks.
* **RPR016 wait/blocking discipline** — an untimed ``Condition.wait``
  must sit in a predicate loop; blocking calls (``time.sleep``,
  ``*.join``, non-condition ``*.wait``) must not run under a lock; and
  no call may carry ``io``/``process`` (plus any extra effects a
  ``[[lock]]`` table forbids, e.g. ``time``/``alloc`` for the scheduler
  hot path) while holding a lock — effects come from the S18 fixpoint,
  with the policy's absorb owners honoured.

The ``# guarded-by:`` grammar::

    # guarded-by: <target> -- <reason>

where ``<target>`` is a lock (``_lock``, ``ServeEngine._lock``, or a
full qname) the verifier then treats as the field's guard, or one of
the trusted disciplines ``owner`` (the owning object's creator
serialises access — e.g. ``RateWindow`` guarded by whichever Tracer or
engine holds it) and ``unshared`` (never escapes its thread).  The
reason is mandatory; a marker that does not parse is itself an RPR014
finding.

``repro races check|show|snapshot|diff`` drives this module; the
committed ``CONCURRENCY.json`` snapshot is diffed in CI exactly like
``ARCH_EFFECTS.json``.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from .callgraph import (CallGraph, FunctionNode, _dotted_text, _expand_alias,
                        build_callgraph, iter_own_nodes)
from .effects import (DEFAULT_ABSORB, EffectAnalysis, MUTATING_METHOD_NAMES)
from .findings import Finding
from .framework import ModuleContext, ProjectChecker, register_checker
from .policy import (DEFAULT_POLICY, ArchPolicy, load_policy,
                     run_state_key)

#: Annotation marker; the grammar is ``'# ' marker ' ' target ' -- ' reason``.
GUARD_MARKER = "guarded-by:"
_GUARD_RE = re.compile(
    r"#\s*guarded-by:\s*(?P<target>[A-Za-z_][\w.]*)\s+--\s+(?P<reason>\S.*)$")

#: Annotation targets that are disciplines, not lock names.
TRUSTED_DISCIPLINES = ("owner", "unshared")

#: Constructors whose instances participate in locksets.
LOCK_FACTORIES = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "condition",
    "threading.Semaphore": "semaphore",
    "threading.BoundedSemaphore": "semaphore",
}

#: Sync primitives that are thread-safe by construction: their *fields*
#: are exempt from RPR014, but they never appear in a lockset.
NONLOCK_SYNC = {
    "threading.Event": "event",
    "threading.local": "threadlocal",
    "contextvars.ContextVar": "contextvar",
    "queue.Queue": "queue",
    "queue.SimpleQueue": "queue",
}

#: Thread-spawn constructors (process spawns match ``*.Process``).
THREAD_SPAWNS = frozenset({"threading.Thread", "threading.Timer"})

#: deque mutators the effect engine's table does not need.
EXTRA_MUTATORS = frozenset({"appendleft", "popleft", "rotate", "extendleft"})
_MUTATORS = frozenset(MUTATING_METHOD_NAMES) | EXTRA_MUTATORS

#: Effects no call may carry while holding *any* lock; ``[[lock]]``
#: tables add extras (``time``/``alloc``) per lock.
LOCK_FORBIDDEN_EFFECTS = ("io", "process")

#: Constructor-time writes never race: publication happens-before use.
_SETUP_METHODS = ("__init__", "__post_init__", "__new__", "__set_name__")

DEFAULT_SNAPSHOT = "CONCURRENCY.json"
SNAPSHOT_VERSION = 1

RACE_RULES = ("RPR014", "RPR015", "RPR016")


def _short(qname: str) -> str:
    """``repro.serve.engine.ServeEngine._lock`` -> ``ServeEngine._lock``."""
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qname


def _fmt_locks(locks: frozenset | set) -> str:
    return "{" + ", ".join(sorted(_short(lk) for lk in locks)) + "}"


# -- analysis state ----------------------------------------------------------
@dataclass(frozen=True)
class Access:
    """One read or write of a shared-state candidate."""

    key: str  #: ``Class.attr`` / ``module.NAME`` qname of the field
    kind: str  #: ``"read"`` | ``"write"``
    func: str
    path: str
    lineno: int
    held: frozenset  #: locks lexically held at the access
    setup: bool = False  #: inside ``__init__`` (pre-publication)


@dataclass(frozen=True)
class AcquireSite:
    lock: str
    held: frozenset  #: locks lexically held when acquiring
    func: str
    path: str
    lineno: int


@dataclass(frozen=True)
class WaitSite:
    lock: str  #: the condition's lock key
    timed: bool
    in_loop: bool
    held: frozenset  #: locks held at the wait, including the condition
    func: str
    path: str
    lineno: int


@dataclass(frozen=True)
class SpawnSite:
    kind: str  #: ``"thread"`` | ``"process"``
    target: str | None  #: resolved entry qname (None: dynamic target)
    func: str
    path: str
    lineno: int


@dataclass(frozen=True)
class GuardAnnotation:
    key: str
    target: str
    reason: str
    path: str
    lineno: int


@dataclass
class FuncSummary:
    """Per-function lock-relevant facts from one lexical scan."""

    qname: str
    accesses: list[Access] = field(default_factory=list)
    acquires: list[AcquireSite] = field(default_factory=list)
    waits: list[WaitSite] = field(default_factory=list)
    spawns: list[SpawnSite] = field(default_factory=list)
    #: (dotted, held, lineno) — lexically-detected blocking calls
    blocking: list[tuple] = field(default_factory=list)
    #: (callee qname, locks lexically held at the site, lineno)
    call_sites: list[tuple] = field(default_factory=list)


@dataclass
class ThreadContext:
    """One set of OS threads executing the same entry points."""

    name: str
    roots: tuple
    multi: bool  #: more than one thread may run these entries at once
    isolated: bool  #: separate address space (process workers)
    reach: set = field(default_factory=set)
    parent: dict = field(default_factory=dict)  #: BFS tree for chains

    def chain(self, qname: str) -> list[str]:
        """``[root, ..., qname]`` along the discovery tree."""
        chain = [qname]
        seen = {qname}
        while True:
            prev = self.parent.get(chain[-1])
            if prev is None or prev in seen:
                return list(reversed(chain))
            seen.add(prev)
            chain.append(prev)


class _ScanEnv:
    """Mutable per-function scan context (kept off the recursion args)."""

    __slots__ = ("qname", "owner", "module", "path", "lines", "locals",
                 "globals", "out", "held_at_line", "setup", "symbols")

    def __init__(self, **kw):
        for k, v in kw.items():
            setattr(self, k, v)


class ConcurrencyAnalysis:
    """Locks, thread contexts, and lock fixpoints for a call graph."""

    def __init__(self, graph: CallGraph, effects: EffectAnalysis,
                 policy: ArchPolicy | None = None):
        self.graph = graph
        self.effects = effects
        self.policy = policy
        #: every sync primitive: qname key -> kind ("lock", "event", ...)
        self.sync_kinds: dict[str, str] = {}
        self.summaries: dict[str, FuncSummary] = {}
        self.guards: dict[str, list[GuardAnnotation]] = {}
        self._comment_cache: dict[str, dict[int, str]] = {}
        #: (path, lineno, line text) of unparseable guarded-by markers
        self.malformed: list[tuple] = []
        self.contexts: dict[str, ThreadContext] = {}
        self.entry_issues: list[str] = []  #: unresolvable policy names
        self.must: dict[str, frozenset] = {}
        self.may: dict[str, frozenset] = {}
        #: shared-state candidates: key -> participating accesses
        self.candidates: dict[str, list[Access]] = {}
        #: key -> verdict record (see :meth:`_classify_fields`)
        self.verdicts: dict[str, dict] = {}
        #: (held-lock, acquired-lock) -> representative AcquireSite
        self.order_edges: dict[tuple, AcquireSite] = {}
        self.order_cycles: list[list] = []

        self._method_owner = self._build_method_owner()
        self._harvest_sync()
        self._summarize()
        self._build_contexts()
        self._fixpoints()
        self._classify_fields()
        self._order_graph()

    # -- setup ---------------------------------------------------------------
    def _build_method_owner(self) -> dict[str, str]:
        owner: dict[str, str] = {}
        for cq, cnode in self.graph.classes.items():
            for mq in cnode.methods.values():
                owner[mq] = cq
        for q in self.graph.functions:
            if q not in owner and ".<locals>." in q:
                method = owner.get(q.split(".<locals>.")[0])
                if method is not None:
                    owner[q] = method
        return owner

    def _harvest_sync(self) -> None:
        """Find every lock/sync-primitive field and module global."""
        kinds = dict(LOCK_FACTORIES)
        kinds.update(NONLOCK_SYNC)
        for qname in sorted(self.graph.functions):
            node = self.graph.functions[qname]
            symbols = self.graph._symbols.get(node.module, {})
            if qname.endswith(".<module>"):
                scope = node.module
                body = getattr(node.ast_node, "body", [])
                self._harvest_sync_block(body, scope, None, symbols, kinds)
                continue
            owner = self._method_owner.get(qname)
            if owner is None:
                continue
            body = getattr(node.ast_node, "body", [])
            self._harvest_sync_block(body, None, owner, symbols, kinds)

    def _harvest_sync_block(self, stmts, module, owner, symbols, kinds):
        for stmt in stmts:
            if not (isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Call)):
                continue
            dotted = _dotted_text(stmt.value.func)
            if dotted is None:
                continue
            kind = kinds.get(_expand_alias(symbols, dotted))
            if kind is None:
                continue
            for target in stmt.targets:
                if (owner is not None and isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    self.sync_kinds[f"{owner}.{target.attr}"] = kind
                elif module is not None and isinstance(target, ast.Name):
                    self.sync_kinds[f"{module}.{target.id}"] = kind

    def _is_lock(self, key: str) -> bool:
        return self.sync_kinds.get(key) in (
            "lock", "rlock", "condition", "semaphore")

    # -- per-function lexical scan -------------------------------------------
    def _summarize(self) -> None:
        for qname in sorted(self.graph.functions):
            node = self.graph.functions[qname]
            if qname.endswith(".<module>"):
                self._module_guard_pass(qname, node)
                continue
            self.summaries[qname] = self._scan_function(qname, node)

    def _module_guard_pass(self, qname: str, node: FunctionNode) -> None:
        """Harvest guarded-by annotations on module-level assignments."""
        lines = self.graph.sources.get(node.path, [])
        for stmt in getattr(node.ast_node, "body", []):
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    key = f"{node.module}.{target.id}"
                    self._harvest_guard(key, node.path, lines, stmt.lineno)

    def _comments(self, path: str) -> dict[int, str]:
        """``lineno -> comment text`` via the tokenizer (string literals
        that merely *contain* the marker never count as annotations)."""
        cached = self._comment_cache.get(path)
        if cached is not None:
            return cached
        comments: dict[int, str] = {}
        source = "\n".join(self.graph.sources.get(path, []))
        try:
            for tok in tokenize.generate_tokens(
                    io.StringIO(source).readline):
                if tok.type == tokenize.COMMENT:
                    comments[tok.start[0]] = tok.string
        except (tokenize.TokenError, SyntaxError, IndentationError):
            pass
        self._comment_cache[path] = comments
        return comments

    def _harvest_guard(self, key: str, path: str, lines: list,
                       lineno: int) -> None:
        comments = self._comments(path)
        for ln in (lineno, lineno - 1):
            text = comments.get(ln, "")
            if GUARD_MARKER not in text:
                continue
            m = _GUARD_RE.search(text)
            if m is None:
                entry = (path, ln, text.strip())
                if entry not in self.malformed:
                    self.malformed.append(entry)
                return
            ann = GuardAnnotation(key=key, target=m.group("target"),
                                  reason=m.group("reason").strip(),
                                  path=path, lineno=ln)
            existing = self.guards.setdefault(key, [])
            if not any(a.lineno == ln and a.path == path for a in existing):
                existing.append(ann)
            return

    def _scan_function(self, qname: str, node: FunctionNode) -> FuncSummary:
        out = FuncSummary(qname)
        func = node.ast_node
        local_names: set[str] = set()
        global_decls: set[str] = set()
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            a = func.args
            for p in (a.posonlyargs + a.args + a.kwonlyargs):
                local_names.add(p.arg)
            if a.vararg:
                local_names.add(a.vararg.arg)
            if a.kwarg:
                local_names.add(a.kwarg.arg)
        for n in iter_own_nodes(func):
            if isinstance(n, ast.Global):
                global_decls.update(n.names)
            elif isinstance(n, ast.Name) and isinstance(
                    n.ctx, (ast.Store, ast.Del)):
                local_names.add(n.id)
            elif isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef)):
                local_names.add(n.name)
        local_names -= global_decls
        owner = self._method_owner.get(qname)
        method_name = qname.rsplit(".", 1)[-1]
        env = _ScanEnv(
            qname=qname, owner=owner, module=node.module, path=node.path,
            lines=self.graph.sources.get(node.path, []),
            locals=local_names, globals=global_decls, out=out,
            held_at_line={},
            setup=(owner is not None and method_name in _SETUP_METHODS),
            symbols=self.graph._symbols.get(node.module, {}),
        )
        self._scan_block(getattr(func, "body", []), [], env, in_loop=False)
        for cs in node.resolved_sites:
            out.call_sites.append(
                (cs.target, env.held_at_line.get(cs.lineno, frozenset()),
                 cs.lineno))
        return out

    # -- the lexical walk: with-blocks, acquire/release, loops ---------------
    def _scan_block(self, stmts, held: list, env: _ScanEnv,
                    in_loop: bool) -> None:
        opened: list[str] = []
        for stmt in stmts:
            key = self._acquire_release_stmt(stmt, env)
            if key is not None:
                verb, lock = key
                if verb == "acquire":
                    env.out.acquires.append(AcquireSite(
                        lock, frozenset(held), env.qname, env.path,
                        stmt.lineno))
                    held.append(lock)
                    opened.append(lock)
                elif lock in held:
                    held.remove(lock)
                    if lock in opened:
                        opened.remove(lock)
                continue
            self._scan_stmt(stmt, held, env, in_loop)
        for lock in opened:
            if lock in held:
                held.remove(lock)

    def _acquire_release_stmt(self, stmt: ast.AST,
                              env: _ScanEnv) -> tuple | None:
        """``(verb, lock-key)`` for a bare ``X.acquire()``/``release()``."""
        if not (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)):
            return None
        dotted = _dotted_text(stmt.value.func)
        if dotted is None or "." not in dotted:
            return None
        receiver, _, verb = dotted.rpartition(".")
        if verb not in ("acquire", "release"):
            return None
        key = self._sync_key(receiver, env)
        if key is None or not self._is_lock(key):
            return None
        return (verb, key)

    def _scan_stmt(self, node: ast.AST, held: list, env: _ScanEnv,
                   in_loop: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            taken: list[str] = []
            for item in node.items:
                self._scan_value(item.context_expr, held, env, in_loop)
                lock = self._lock_expr(item.context_expr, env)
                if lock is not None:
                    env.out.acquires.append(AcquireSite(
                        lock, frozenset(list(held) + taken), env.qname,
                        env.path, item.context_expr.lineno))
                    taken.append(lock)
            self._scan_block(node.body, held + taken, env, in_loop)
            return
        if isinstance(node, ast.While):
            self._scan_value(node.test, held, env, in_loop)
            self._scan_block(node.body, list(held), env, True)
            self._scan_block(node.orelse, list(held), env, in_loop)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._scan_value(node.iter, held, env, in_loop)
            self._scan_value(node.target, held, env, in_loop)
            self._scan_block(node.body, list(held), env, True)
            self._scan_block(node.orelse, list(held), env, in_loop)
            return
        if isinstance(node, ast.If):
            self._scan_value(node.test, held, env, in_loop)
            self._scan_block(node.body, list(held), env, in_loop)
            self._scan_block(node.orelse, list(held), env, in_loop)
            return
        if isinstance(node, ast.Try):
            self._scan_block(node.body, list(held), env, in_loop)
            for handler in node.handlers:
                self._scan_block(handler.body, list(held), env, in_loop)
            self._scan_block(node.orelse, list(held), env, in_loop)
            self._scan_block(node.finalbody, list(held), env, in_loop)
            return
        self._scan_value(node, held, env, in_loop)

    # -- expression-level harvesting -----------------------------------------
    def _scan_value(self, root: ast.AST, held: list, env: _ScanEnv,
                    in_loop: bool) -> None:
        """Walk one simple statement / expression for accesses and calls."""
        if root is None:
            return
        hf = frozenset(held)
        # subscript/attribute stores reach *through* the target into the
        # container field: ``self._xs[k] = v`` writes ``_xs``.
        for target in self._assign_targets(root):
            base = target
            while isinstance(base, ast.Subscript):
                base = base.value
            if base is not target:
                self._record_attr_or_global(base, "write", hf, env,
                                            force=True)
        stack = [root]
        while stack:
            n = stack.pop()
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef, ast.Lambda)):
                continue
            if isinstance(n, ast.Call):
                self._scan_call(n, hf, env, in_loop)
            elif isinstance(n, (ast.Attribute, ast.Name)):
                kind = ("write" if isinstance(n.ctx, (ast.Store, ast.Del))
                        else "read")
                self._record_attr_or_global(n, kind, hf, env)
            stack.extend(ast.iter_child_nodes(n))

    @staticmethod
    def _assign_targets(root: ast.AST) -> list:
        if isinstance(root, ast.Assign):
            return list(root.targets)
        if isinstance(root, (ast.AugAssign, ast.AnnAssign)):
            return [root.target]
        if isinstance(root, ast.Delete):
            return list(root.targets)
        return []

    def _record_attr_or_global(self, n: ast.AST, kind: str, held: frozenset,
                               env: _ScanEnv, force: bool = False) -> None:
        key = None
        if (isinstance(n, ast.Attribute) and isinstance(n.value, ast.Name)
                and n.value.id == "self" and env.owner is not None):
            if self.graph._class_method(env.owner, n.attr) is not None:
                return  # a bound-method reference, not state
            key = f"{env.owner}.{n.attr}"
        elif isinstance(n, ast.Name):
            name = n.id
            if name in env.locals:
                return
            is_global_store = isinstance(n.ctx, (ast.Store, ast.Del)) \
                and name in env.globals
            if not (force or is_global_store
                    or isinstance(n.ctx, ast.Load)):
                return
            if name not in self._module_names(env.module) \
                    and name not in env.globals:
                return
            key = f"{env.module}.{name}"
        if key is None:
            return
        self._harvest_guard(key, env.path, env.lines, n.lineno)
        if key in self.sync_kinds:
            return  # the primitive itself is not racy state
        env.out.accesses.append(Access(
            key=key, kind=kind, func=env.qname, path=env.path,
            lineno=n.lineno, held=held, setup=env.setup))

    def _module_names(self, module: str) -> frozenset:
        return self.effects._module_level_names(module)

    def _sync_key(self, receiver: str, env: _ScanEnv) -> str | None:
        """Resolve dotted receiver text to a sync-primitive key."""
        parts = receiver.split(".")
        if (len(parts) == 2 and parts[0] == "self"
                and env.owner is not None):
            key = f"{env.owner}.{parts[1]}"
            return key if key in self.sync_kinds else None
        if len(parts) == 1 and parts[0] not in env.locals:
            key = f"{env.module}.{parts[0]}"
            return key if key in self.sync_kinds else None
        return None

    def _lock_expr(self, expr: ast.AST, env: _ScanEnv) -> str | None:
        """Lock key of a ``with``-item (``with self._lock:``)."""
        if isinstance(expr, ast.Call):
            return None  # ``with stage(...)`` etc. — not a lock object
        dotted = _dotted_text(expr)
        if dotted is None:
            return None
        key = self._sync_key(dotted, env)
        return key if key is not None and self._is_lock(key) else None

    def _scan_call(self, call: ast.Call, held: frozenset, env: _ScanEnv,
                   in_loop: bool) -> None:
        prev = env.held_at_line.get(call.lineno)
        env.held_at_line[call.lineno] = (held if prev is None
                                         else prev & held)
        dotted = _dotted_text(call.func)
        if dotted is None:
            return
        expanded = _expand_alias(env.symbols, dotted)
        self._scan_spawn(call, dotted, expanded, env)
        if "." not in dotted:
            return
        receiver, _, last = dotted.rpartition(".")
        if last == "wait":
            timed = bool(call.args or call.keywords)
            key = self._sync_key(receiver, env)
            if key is not None and self.sync_kinds.get(key) == "condition":
                env.out.waits.append(WaitSite(
                    lock=key, timed=timed, in_loop=in_loop, held=held,
                    func=env.qname, path=env.path, lineno=call.lineno))
            elif held:
                env.out.blocking.append((dotted, held, call.lineno))
            return
        if expanded == "time.sleep" and held:
            env.out.blocking.append((expanded, held, call.lineno))
            return
        if last == "join" and "thread" in receiver.lower() and held:
            env.out.blocking.append((dotted, held, call.lineno))
            return
        if last in _MUTATORS:
            base = call.func
            if isinstance(base, ast.Attribute):
                self._record_attr_or_global(base.value, "write", held, env,
                                            force=True)

    def _scan_spawn(self, call: ast.Call, dotted: str, expanded: str,
                    env: _ScanEnv) -> None:
        kind = None
        if expanded in THREAD_SPAWNS:
            kind = "thread"
        elif (expanded.rpartition(".")[2] == "Process"
              and self.graph.resolve_class(expanded) is None
              and (expanded.startswith("multiprocessing")
                   or "." in dotted)):
            kind = "process"
        if kind is None:
            return
        target = None
        for kw in call.keywords:
            if kw.arg == "target":
                target = self._spawn_target(kw.value, env)
        if kind == "thread" or target is not None:
            env.out.spawns.append(SpawnSite(
                kind=kind, target=target, func=env.qname, path=env.path,
                lineno=call.lineno))

    def _spawn_target(self, value: ast.AST, env: _ScanEnv) -> str | None:
        if (isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self" and env.owner is not None):
            return self.graph._class_method(env.owner, value.attr)
        dotted = _dotted_text(value)
        if dotted is None:
            return None
        return self.graph.resolve_function(
            _expand_alias(env.symbols, dotted))

    # -- thread contexts ------------------------------------------------------
    def _build_contexts(self) -> None:
        serialized = set()
        entries: set[str] = set()
        if self.policy is not None:
            serialized = set(self.policy.conc_serialized)
            for name in self.policy.conc_entries:
                resolved = self._entry_names(name)
                if not resolved:
                    self.entry_issues.append(name)
                entries.update(resolved)
        thread_targets: dict[str, SpawnSite] = {}
        process_targets: dict[str, SpawnSite] = {}
        for qname in sorted(self.summaries):
            for spawn in self.summaries[qname].spawns:
                if spawn.target is None:
                    continue
                if spawn.kind == "thread":
                    thread_targets.setdefault(spawn.target, spawn)
                    # the spawner keeps running concurrently: it and its
                    # class's public surface root the callers context
                    entries.add(qname)
                    owner = self._method_owner.get(qname)
                    if owner is not None:
                        entries.update(self._public_methods(owner))
                else:
                    process_targets.setdefault(spawn.target, spawn)
        entries -= serialized
        entries = {e for e in entries if e in self.graph.functions}
        for target in sorted(thread_targets):
            ctx = ThreadContext(
                name=f"thread:{_short(target)}", roots=(target,),
                multi=False, isolated=False)
            self._bfs(ctx)
            self.contexts[ctx.name] = ctx
        for target in sorted(process_targets):
            ctx = ThreadContext(
                name=f"process:{_short(target)}", roots=(target,),
                multi=True, isolated=True)
            self._bfs(ctx)
            self.contexts[ctx.name] = ctx
        if entries and thread_targets:
            ctx = ThreadContext(
                name="callers", roots=tuple(sorted(entries)),
                multi=True, isolated=False)
            self._bfs(ctx)
            self.contexts[ctx.name] = ctx

    def _entry_names(self, name: str) -> set[str]:
        """Policy entry -> concrete function qnames (empty: unresolved)."""
        if name in self.graph.functions:
            return {name}
        if name in self.graph.classes:
            return self._public_methods(name)
        return set()

    def _public_methods(self, class_qname: str) -> set[str]:
        node = self.graph.classes.get(class_qname)
        if node is None:
            return set()
        serialized = (set(self.policy.conc_serialized)
                      if self.policy is not None else set())
        return {q for m, q in node.methods.items()
                if not m.startswith("_") and q not in serialized}

    def _bfs(self, ctx: ThreadContext) -> None:
        stack = [r for r in ctx.roots if r in self.graph.functions]
        ctx.reach.update(stack)
        for r in stack:
            ctx.parent[r] = None
        while stack:
            q = stack.pop()
            for callee in sorted(self.graph.functions[q].calls):
                if callee not in ctx.parent:
                    ctx.parent[callee] = q
                    ctx.reach.add(callee)
                    stack.append(callee)

    # -- interprocedural lock fixpoints ---------------------------------------
    def _fixpoints(self) -> None:
        participating: set[str] = set()
        roots: set[str] = set()
        for ctx in self.contexts.values():
            participating |= ctx.reach
            roots.update(r for r in ctx.roots
                         if r in self.graph.functions)
        self._participating = participating
        incoming: dict[str, list] = {}
        for q in sorted(participating):
            for callee, held, _ln in self.summaries[q].call_sites:
                if callee in participating:
                    incoming.setdefault(callee, []).append((q, held))

        # MustHeld: descending intersection; None is the ⊤ start value.
        must: dict[str, frozenset | None] = {
            q: (frozenset() if q in roots else None) for q in participating}
        changed = True
        while changed:
            changed = False
            for q in sorted(participating - roots):
                vals = [must[caller] | held
                        for caller, held in incoming.get(q, ())
                        if must[caller] is not None]
                new = frozenset.intersection(*vals) if vals else must[q]
                if new != must[q]:
                    must[q] = new
                    changed = True
        self.must = {q: (m if m is not None else frozenset())
                     for q, m in must.items()}

        # MayHeld: ascending union (lock-order edges need an upper bound).
        may: dict[str, frozenset] = {q: frozenset() for q in participating}
        changed = True
        while changed:
            changed = False
            for q in sorted(participating - roots):
                acc = may[q]
                for caller, held in incoming.get(q, ()):
                    acc = acc | may[caller] | held
                if acc != may[q]:
                    may[q] = acc
                    changed = True
        self.may = may

    def effective_locks(self, access: Access) -> frozenset:
        return self.must.get(access.func, frozenset()) | access.held

    # -- RPR014: shared-state lockset verdicts --------------------------------
    def _classify_fields(self) -> None:
        live = [c for c in self.contexts.values() if not c.isolated]
        fn_ctxs: dict[str, list] = {}
        for ctx in live:
            for q in ctx.reach:
                fn_ctxs.setdefault(q, []).append(ctx)
        buckets: dict[str, list] = {}
        for q in sorted(fn_ctxs):
            for a in self.summaries[q].accesses:
                buckets.setdefault(a.key, []).append(a)
        declared = self._declared_guards()
        for key in sorted(buckets):
            accesses = [a for a in buckets[key] if not a.setup]
            writes = [a for a in accesses if a.kind == "write"]
            if not writes or not self._is_racy(writes, accesses, fn_ctxs):
                continue
            self.candidates[key] = accesses
            effective = {id(a): self.effective_locks(a) for a in accesses}
            common = frozenset.intersection(
                *[effective[id(a)] for a in accesses])
            if common:
                verdict = {"verdict": "guarded", "locks": sorted(common)}
                lock = declared.get(key)
                if lock is not None and lock not in common:
                    verdict = {
                        "verdict": "violated", "locks": sorted(common),
                        "declared": lock,
                        "finding": self._declared_mismatch(
                            key, lock, accesses, effective, fn_ctxs),
                    }
                self.verdicts[key] = verdict
                continue
            anns = self.guards.get(key, [])
            if anns:
                ann = anns[0]
                verdict = {"verdict": "annotated", "guard": ann.target,
                           "reason": ann.reason}
                if (ann.target not in TRUSTED_DISCIPLINES
                        and self._resolve_lock_target(ann.target, key)
                        is None):
                    verdict["finding"] = Finding(
                        path=ann.path, line=ann.lineno, col=1,
                        rule_id="RPR014",
                        message=(f"'# guarded-by: {ann.target}' on "
                                 f"{_short(key)} names no known lock "
                                 f"(known locks: use the attribute name, "
                                 f"Class.attr, a full qname, or one of "
                                 f"{'/'.join(TRUSTED_DISCIPLINES)})"))
                self.verdicts[key] = verdict
                continue
            lock = declared.get(key)
            if lock is not None:
                self.verdicts[key] = {
                    "verdict": "violated", "locks": [], "declared": lock,
                    "finding": self._declared_mismatch(
                        key, lock, accesses, effective, fn_ctxs),
                }
                continue
            self.verdicts[key] = {
                "verdict": "unguarded",
                "finding": self._race_finding(key, writes, accesses,
                                              effective, fn_ctxs),
            }

    def _declared_guards(self) -> dict[str, str]:
        declared: dict[str, str] = {}
        if self.policy is not None:
            for lp in self.policy.lock_policies:
                for guarded in lp.guards:
                    declared[guarded] = lp.name
        return declared

    def _is_racy(self, writes, accesses, fn_ctxs) -> bool:
        for w in writes:
            wcs = fn_ctxs.get(w.func, [])
            if any(c.multi for c in wcs):
                return True
            wnames = {c.name for c in wcs}
            for a in accesses:
                if any(c.name not in wnames
                       for c in fn_ctxs.get(a.func, [])):
                    return True
        return False

    def _context_chain(self, access: Access, fn_ctxs,
                       avoid: str | None = None) -> tuple[str, str]:
        ctxs = fn_ctxs.get(access.func, [])
        ctx = next((c for c in ctxs if c.name != avoid),
                   ctxs[0] if ctxs else None)
        if ctx is None:
            return ("?", access.func)
        chain = " -> ".join(_short(q) for q in ctx.chain(access.func))
        return (ctx.name, chain)

    def _race_finding(self, key, writes, accesses, effective,
                      fn_ctxs) -> Finding:
        w = min(writes, key=lambda a: (len(effective[id(a)]), a.path,
                                       a.lineno))
        others = [a for a in accesses
                  if a is not w and not (effective[id(a)]
                                         & effective[id(w)])]
        if not others:
            others = [a for a in accesses if a is not w]
        wctx, wchain = self._context_chain(w, fn_ctxs)
        if others:
            o = min(others, key=lambda a: (a.func == w.func,
                                           len(effective[id(a)]),
                                           a.path, a.lineno))
            octx, ochain = self._context_chain(o, fn_ctxs, avoid=wctx)
            detail = (f"written in {_short(w.func)} holding "
                      f"{_fmt_locks(effective[id(w)])} "
                      f"(thread {wctx!r} via {wchain}); "
                      f"{o.kind} in {_short(o.func)} holding "
                      f"{_fmt_locks(effective[id(o)])} "
                      f"(thread {octx!r} via {ochain})")
        else:
            detail = (f"written in {_short(w.func)} holding "
                      f"{_fmt_locks(effective[id(w)])}, reachable from "
                      f"multiple threads (thread {wctx!r} via {wchain})")
        return Finding(
            path=w.path, line=w.lineno, col=1, rule_id="RPR014",
            message=(f"shared field {_short(key)} has no common lockset: "
                     f"{detail}; guard every access with one lock or "
                     f"annotate '# guarded-by: <lock|owner|unshared> -- "
                     f"<reason>'"))

    def _declared_mismatch(self, key, lock, accesses, effective,
                           fn_ctxs) -> Finding:
        violator = min(
            (a for a in accesses if lock not in effective[id(a)]),
            key=lambda a: (a.path, a.lineno))
        ctx, chain = self._context_chain(violator, fn_ctxs)
        return Finding(
            path=violator.path, line=violator.lineno, col=1,
            rule_id="RPR014",
            message=(f"field {_short(key)} is declared guarded by "
                     f"{_short(lock)} in the [[lock]] policy, but the "
                     f"{violator.kind} in {_short(violator.func)} holds "
                     f"{_fmt_locks(effective[id(violator)])} "
                     f"(thread {ctx!r} via {chain})"))

    def _resolve_lock_target(self, target: str, key: str) -> str | None:
        """Match an annotation's lock target against known locks."""
        candidates = sorted(k for k in self.sync_kinds
                            if self._is_lock(k)
                            and (k == target or k.endswith("." + target)))
        if not candidates:
            return None
        # prefer a lock on the annotated field's own class/module
        scope = key.rsplit(".", 1)[0]
        for cand in candidates:
            if cand.rsplit(".", 1)[0] == scope:
                return cand
        return candidates[0]

    # -- RPR015: lock-order graph ---------------------------------------------
    def _order_graph(self) -> None:
        for q in sorted(self._participating):
            base = self.may.get(q, frozenset())
            for acq in self.summaries[q].acquires:
                for h in sorted(base | acq.held):
                    if h != acq.lock:
                        self.order_edges.setdefault((h, acq.lock), acq)
        # Tarjan SCC over the lock nodes: any SCC with >1 node (or a
        # self-edge) is an ordering cycle.
        adj: dict[str, list] = {}
        for (a, b) in self.order_edges:
            adj.setdefault(a, []).append(b)
            adj.setdefault(b, [])
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        sccs: list[list] = []

        def strongconnect(v: str) -> None:
            work = [(v, iter(sorted(adj[v])))]
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            while work:
                node, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index:
                        index[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(sorted(adj[w]))))
                        advanced = True
                        break
                    if w in on_stack:
                        low[node] = min(low[node], index[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == node:
                            break
                    sccs.append(sorted(scc))

        for v in sorted(adj):
            if v not in index:
                strongconnect(v)
        for scc in sccs:
            if len(scc) > 1 or (scc[0], scc[0]) in self.order_edges:
                self.order_cycles.append(scc)

    # -- finding producers (consumed by the registered checkers) -------------
    def lockset_findings(self) -> Iterator[Finding]:
        for path, lineno, text in sorted(self.malformed):
            yield Finding(
                path=path, line=lineno, col=1, rule_id="RPR014",
                message=(f"malformed guarded-by annotation {text!r}: "
                         f"expected '# guarded-by: <target> -- <reason>'"))
        for key in sorted(self.verdicts):
            finding = self.verdicts[key].get("finding")
            if finding is not None:
                yield finding

    def order_findings(self) -> Iterator[Finding]:
        for scc in self.order_cycles:
            edges = sorted((a, b) for (a, b) in self.order_edges
                           if a in scc and b in scc)
            sites = "; ".join(
                f"{_short(a)} then {_short(b)} at "
                f"{self.order_edges[(a, b)].path}:"
                f"{self.order_edges[(a, b)].lineno}"
                for a, b in edges)
            first = self.order_edges[edges[0]]
            yield Finding(
                path=first.path, line=first.lineno, col=1,
                rule_id="RPR015",
                message=(f"lock-order cycle among "
                         f"{_fmt_locks(frozenset(scc))}: {sites} — "
                         f"threads taking these locks in different "
                         f"orders can deadlock"))

    def wait_findings(self) -> Iterator[Finding]:
        lock_forbid = {lp.name: tuple(lp.forbid)
                       for lp in (self.policy.lock_policies
                                  if self.policy is not None else ())}
        for q in sorted(self.summaries):
            s = self.summaries[q]
            for w in s.waits:
                if not w.timed and not w.in_loop:
                    yield Finding(
                        path=w.path, line=w.lineno, col=1,
                        rule_id="RPR016",
                        message=(f"untimed {_short(w.lock)}.wait() outside "
                                 f"a predicate loop in {_short(q)}: spurious "
                                 f"wakeups make bare waits incorrect — use "
                                 f"'while <predicate>: cond.wait()'"))
                others = w.held - {w.lock}
                if others:
                    yield Finding(
                        path=w.path, line=w.lineno, col=1,
                        rule_id="RPR016",
                        message=(f"{_short(w.lock)}.wait() in {_short(q)} "
                                 f"blocks while still holding "
                                 f"{_fmt_locks(others)} — waiting with a "
                                 f"second lock held starves its users"))
            for dotted, held, lineno in s.blocking:
                yield Finding(
                    path=s_path(self.graph, q), line=lineno, col=1,
                    rule_id="RPR016",
                    message=(f"blocking call {dotted}() in {_short(q)} "
                             f"while holding {_fmt_locks(held)}"))
            yield from self._effect_findings(q, s, lock_forbid)

    def _effect_findings(self, q: str, s: FuncSummary,
                         lock_forbid: dict) -> Iterator[Finding]:
        must = self.must.get(q, frozenset())
        reported: set[tuple] = set()
        for callee, held, lineno in s.call_sites:
            locks = must | held
            if not locks:
                continue
            info = self.effects.info.get(callee)
            if info is None:
                continue
            callee_module = self.graph.functions[callee].module
            for eff in sorted(info.effects):
                if eff.startswith("raises("):
                    continue
                if self.effects._absorbs(callee_module, eff):
                    continue  # the owner layer keeps its effect
                forbidden = eff in LOCK_FORBIDDEN_EFFECTS or any(
                    eff in lock_forbid.get(lk, ()) for lk in locks)
                if not forbidden or (q, callee, eff) in reported:
                    continue
                reported.add((q, callee, eff))
                chain = self.effects.effect_chain(callee, eff)
                yield Finding(
                    path=s_path(self.graph, q), line=lineno, col=1,
                    rule_id="RPR016",
                    message=(f"call under {_fmt_locks(locks)} in "
                             f"{_short(q)} carries effect {eff!r} via "
                             f"{' -> '.join(_short(c) for c in chain)} — "
                             f"effectful work must not run while these "
                             f"locks are held"))

    # -- snapshot -------------------------------------------------------------
    def snapshot_payload(self) -> dict:
        fields = {}
        for key, verdict in sorted(self.verdicts.items()):
            entry = {"verdict": verdict["verdict"]}
            if verdict.get("locks"):
                entry["locks"] = verdict["locks"]
            if verdict.get("guard"):
                entry["guard"] = verdict["guard"]
            if verdict.get("declared"):
                entry["declared"] = verdict["declared"]
            fields[key] = entry
        return {
            "version": SNAPSHOT_VERSION,
            "root": self.graph.root_package,
            "contexts": {
                ctx.name: {
                    "roots": sorted(ctx.roots),
                    "multi": ctx.multi,
                    "isolated": ctx.isolated,
                    "reachable": len(ctx.reach),
                }
                for ctx in sorted(self.contexts.values(),
                                  key=lambda c: c.name)
            },
            "locks": {k: v for k, v in sorted(self.sync_kinds.items())
                      if self._is_lock(k)},
            "fields": fields,
            "lock_order": sorted(f"{a} -> {b}"
                                 for (a, b) in self.order_edges),
        }


def s_path(graph: CallGraph, qname: str) -> str:
    return graph.functions[qname].path


# -- snapshot I/O (mirrors repro.analysis.effects) ---------------------------
def write_snapshot(analysis: ConcurrencyAnalysis,
                   path: str | Path = DEFAULT_SNAPSHOT) -> dict:
    payload = analysis.snapshot_payload()
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")
    return payload


def load_snapshot(path: str | Path = DEFAULT_SNAPSHOT) -> dict:
    return json.loads(Path(path).read_text())


def _snapshot_lines(payload: dict) -> set[str]:
    lines: set[str] = set()
    for key, entry in payload.get("fields", {}).items():
        tail = entry.get("locks") or entry.get("guard") \
            or entry.get("declared") or ""
        if isinstance(tail, list):
            tail = ",".join(tail)
        lines.add(f"field {key}: {entry.get('verdict')}"
                  + (f" [{tail}]" if tail else ""))
    for edge in payload.get("lock_order", []):
        lines.add(f"order {edge}")
    for name, ctx in payload.get("contexts", {}).items():
        lines.add(f"context {name}: roots={len(ctx.get('roots', []))}")
    return lines


def diff_snapshots(old: dict, new: dict) -> tuple[list, list]:
    """``(added, removed)`` human lines; additions block CI."""
    old_lines = _snapshot_lines(old)
    new_lines = _snapshot_lines(new)
    return (sorted(new_lines - old_lines), sorted(old_lines - new_lines))


# -- shared per-run state and the registered checkers ------------------------
_CONC_ATTR = "_repro_conc_state"


def conc_state(contexts: Sequence[ModuleContext]) -> ConcurrencyAnalysis \
        | None:
    """One :class:`ConcurrencyAnalysis` per checker run (cached on the
    first context object keyed by :func:`run_state_key`, like the
    arch-policy project state — memoized ASTs let an unchanged tree
    reuse the whole fixpoint across runs).

    Unlike the arch rules this does *not* scope-filter to the policy
    tree: fixtures and scratch trees get their thread roots discovered
    with no policy needed; policy names that do not resolve in the
    analyzed graph are simply inert (``repro races check`` validates
    them against the real tree).
    """
    if not contexts:
        return None
    key = run_state_key(contexts)
    cached = getattr(contexts[0], _CONC_ATTR, None)
    if cached is not None and cached[0] == key:
        return cached[1]
    policy = None
    policy_file = Path(DEFAULT_POLICY)
    if policy_file.is_file():
        policy = load_policy(policy_file)
    graph = build_callgraph(
        contexts,
        root_package=policy.root if policy is not None else "repro")
    absorb = dict(DEFAULT_ABSORB)
    if policy is not None:
        absorb["alloc"] = tuple(policy.arena)
    effects = EffectAnalysis(graph, absorb=absorb)
    analysis = ConcurrencyAnalysis(graph, effects, policy)
    setattr(contexts[0], _CONC_ATTR, (key, analysis))
    return analysis


@register_checker
class SharedStateLocksetChecker(ProjectChecker):
    """RPR014: racy shared state needs a common lockset (or a waiver)."""

    rule_id = "RPR014"
    title = ("lockset-discipline: state written in multi-thread-reachable "
             "code needs a non-empty common lockset, a [[lock]] guards "
             "declaration, or '# guarded-by: <target> -- <reason>'")

    def applies(self, contexts: Sequence[ModuleContext]) -> bool:
        return bool(contexts)

    def check_project(self,
                      contexts: Sequence[ModuleContext]) -> Iterator[Finding]:
        conc = conc_state(contexts)
        if conc is not None:
            yield from conc.lockset_findings()


@register_checker
class LockOrderChecker(ProjectChecker):
    """RPR015: the lock-acquisition graph must stay acyclic."""

    rule_id = "RPR015"
    title = ("lock-order-discipline: nested acquisitions must form a DAG "
             "(cycles are potential deadlocks)")

    def applies(self, contexts: Sequence[ModuleContext]) -> bool:
        return bool(contexts)

    def check_project(self,
                      contexts: Sequence[ModuleContext]) -> Iterator[Finding]:
        conc = conc_state(contexts)
        if conc is not None:
            yield from conc.order_findings()


@register_checker
class WaitDisciplineChecker(ProjectChecker):
    """RPR016: predicate-loop waits; no blocking/effectful work under
    a lock."""

    rule_id = "RPR016"
    title = ("wait-discipline: Condition.wait sits in a predicate loop; "
             "no blocking or io/process-effectful calls (plus per-lock "
             "forbid extras) while holding a lock")

    def applies(self, contexts: Sequence[ModuleContext]) -> bool:
        return bool(contexts)

    def check_project(self,
                      contexts: Sequence[ModuleContext]) -> Iterator[Finding]:
        conc = conc_state(contexts)
        if conc is not None:
            yield from conc.wait_findings()
