"""Experiment drivers regenerating every figure of the paper.

One module per experiment id in DESIGN.md:

* E1  ``fig1_gui``      — the GUI's live metric stream.
* E2  ``fig2_dse``      — the DSE methodology (random vs active learning)
                          and knowledge extraction.
* E3  ``fig3_android``  — the 83-device crowdsourcing speed-up study.
* E4  ``headline``      — real-time within 1 W on the ODROID-XU3.
* E5  ``backends``      — cross-implementation comparison.
* E6  ``algorithms``    — cross-algorithm, cross-dataset comparison.
"""

from . import algorithms, backends, fig1_gui, fig2_dse, fig3_android, headline

__all__ = [
    "algorithms",
    "backends",
    "fig1_gui",
    "fig2_dse",
    "fig3_android",
    "headline",
]
