"""Experiment E6 — cross-algorithm, cross-dataset comparison.

The SLAMBench framework's raison d'être: run different SLAM systems over
the same datasets with the same metrics.  Reproduction: KinectFusion vs
frame-to-frame ICP odometry (vs the static floor) on the living-room and
office sequences, reporting accuracy and simulated speed side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.odometry import ICPOdometry
from ..baselines.sparse import SparseOdometry
from ..baselines.static import StaticSLAM
from ..core.harness import run_benchmark
from ..datasets import icl_nuim, tum
from ..kfusion.pipeline import KinectFusion
from ..platforms.odroid import odroid_xu3
from ..platforms.simulator import PlatformConfig

_ALGORITHMS = {
    "kfusion": (
        KinectFusion,
        {"volume_resolution": 128, "volume_size": 5.0, "integration_rate": 1},
    ),
    "icp_odometry": (ICPOdometry, {}),
    # Sparse features need resolution; include it explicitly when running
    # at >= 160x120 (e.g. algorithms.run(..., width=160, height=120,
    # algorithms=[..., "sparse_odometry"])).
    "sparse_odometry": (SparseOdometry, {}),
    "static": (StaticSLAM, {}),
}

#: Algorithms meaningful at the default 80x60 test scale.
DEFAULT_ALGORITHMS = ("kfusion", "icp_odometry", "static")


@dataclass
class AlgorithmComparison:
    rows: list


def run(
    sequence_names: list[str] | None = None,
    n_frames: int = 12,
    width: int = 80,
    height: int = 60,
    algorithms: list[str] | None = None,
    seed: int = 0,
) -> AlgorithmComparison:
    """Run each algorithm over each sequence (laptop scale by default)."""
    if sequence_names is None:
        sequence_names = ["lr_kt0", "lr_kt2", "of_desk"]
    if algorithms is None:
        algorithms = list(DEFAULT_ALGORITHMS)

    device = odroid_xu3()
    rows = []
    for seq_name in sequence_names:
        loader = icl_nuim if seq_name.startswith("lr_") else tum
        sequence = loader.load(
            seq_name, n_frames=n_frames, width=width, height=height, seed=seed
        )
        for algo in algorithms:
            cls, config = _ALGORITHMS[algo]
            result = run_benchmark(
                cls(),
                sequence,
                configuration=config,
                device=device,
                platform_config=PlatformConfig(backend="opencl"),
            )
            assert result.ate is not None and result.simulation is not None
            rows.append(
                {
                    "sequence": seq_name,
                    "algorithm": algo,
                    "ate_max_m": result.ate.max,
                    "ate_rmse_m": result.ate.rmse,
                    "tracked": result.collector.tracked_fraction(),
                    "sim_fps": result.simulation.fps,
                    "sim_power_w": result.simulation.average_power_w,
                }
            )
    return AlgorithmComparison(rows=rows)
