"""Experiment E4 — the poster's headline claim.

"We show that our approach can, for the first time, achieve dense 3D
mapping and tracking in the real-time range within a 1 W power budget on
the Odroid XU3 embedded device.  This is a 4.8x execution time improvement
and a 2.8x power reduction compared to the state-of-the-art."

Reproduction: co-design exploration (algorithmic + backend + DVFS) on the
ODROID-XU3 model under the constraints {Max ATE < 5 cm, >= 30 FPS,
streaming power < 1 W}, reported against two references: the default
configuration and a hand-tuned "state of the art" (the best configuration
at full clocks without DSE, standing in for the pre-HyperMapper best
published numbers).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import OptimizationError
from ..hypermapper.constraints import (
    ConstraintSet,
    accuracy_limit,
    power_budget,
    realtime,
)
from ..hypermapper.evaluator import Evaluation
from ..hypermapper.local_search import local_refine
from ..hypermapper.optimizer import HyperMapper
from ..hypermapper.space import codesign_design_space
from ..hypermapper.surrogate import SurrogateEvaluator
from ..platforms.odroid import odroid_xu3

#: A plausible expert hand-tuning (the pre-DSE state of the art): modest
#: volume reduction and frame decimation at full clocks, OpenCL backend.
STATE_OF_THE_ART = {
    "volume_resolution": 256,
    "volume_size": 4.8,
    "compute_size_ratio": 2,
    "mu_distance": 0.1,
    "icp_threshold": 1e-5,
    "pyramid_iterations_l0": 10,
    "pyramid_iterations_l1": 5,
    "pyramid_iterations_l2": 4,
    "integration_rate": 2,
    "tracking_rate": 1,
    "backend": "opencl",
    "cpu_freq_ghz": 2.0,
    "cpu_cluster": "big",
    "gpu_freq_ghz": 0.6,
}


@dataclass
class HeadlineResult:
    """The tuned configuration and its improvement factors."""

    default: Evaluation
    state_of_the_art: Evaluation
    tuned: Evaluation
    constraints: ConstraintSet

    @property
    def time_improvement_vs_sota(self) -> float:
        return self.state_of_the_art.runtime_s / self.tuned.runtime_s

    @property
    def power_reduction_vs_sota(self) -> float:
        return self.state_of_the_art.power_w / self.tuned.power_w

    @property
    def time_improvement_vs_default(self) -> float:
        return self.default.runtime_s / self.tuned.runtime_s

    @property
    def power_reduction_vs_default(self) -> float:
        return self.default.power_w / self.tuned.power_w

    @property
    def realtime_within_budget(self) -> bool:
        return self.constraints.satisfied(self.tuned)

    def rows(self) -> list[dict]:
        out = []
        for label, ev in (
            ("default", self.default),
            ("state_of_the_art", self.state_of_the_art),
            ("hypermapper_tuned", self.tuned),
        ):
            out.append(
                {
                    "configuration": label,
                    "frame_time_s": ev.runtime_s,
                    "fps": ev.fps,
                    "max_ate_m": ev.max_ate_m,
                    "power_w": ev.power_w,
                }
            )
        return out


def run(
    n_initial: int = 60,
    n_iterations: int = 14,
    samples_per_iteration: int = 8,
    power_budget_w: float = 1.0,
    min_fps: float = 30.0,
    ate_limit_m: float = 0.05,
    seed: int = 7,
    device=None,
) -> HeadlineResult:
    """Search a device's co-design space for the headline point.

    Defaults to the paper's ODROID-XU3; pass any
    :class:`~repro.platforms.device.DeviceModel` to repeat the study on
    other hardware (the state-of-the-art reference then adapts its
    backend to what the device supports).
    """
    device = device if device is not None else odroid_xu3()
    space = codesign_design_space(device)
    constraints = ConstraintSet.of(
        [accuracy_limit(ate_limit_m), realtime(min_fps),
         power_budget(power_budget_w)]
    )
    evaluator = SurrogateEvaluator(device=device, seed=seed)
    # Port the hand-tuning to this device: keep its *algorithmic* choices,
    # take the platform knobs (clocks, clusters) from the device's own
    # defaults, and fall back from OpenCL if unsupported.
    platform_keys = {"backend", "cpu_freq_ghz", "gpu_freq_ghz",
                     "cpu_cluster"}
    sota_config = space.default_configuration()
    sota_config.update({k: v for k, v in STATE_OF_THE_ART.items()
                        if k not in platform_keys})
    if "backend" in space.names:
        sota_config["backend"] = (
            "opencl" if device.supports_backend("opencl") else "openmp"
        )
    sota_config = space.validate(sota_config)
    # The triply-constrained region is small; if a budget misses it,
    # escalate (more iterations, fresh seed) rather than fail — exactly
    # what a practitioner running HyperMapper would do.
    tuned = None
    for attempt in range(3):
        result = HyperMapper(
            space,
            evaluator,
            constraint=constraints,
            n_initial=n_initial * (attempt + 1),
            n_iterations=n_iterations + 4 * attempt,
            samples_per_iteration=samples_per_iteration,
            seed=seed + attempt,
            # Anchor the model: the accuracy-feasible (if power-hungry)
            # default and the expert hand-tuning are known-good priors.
            seed_configurations=[space.default_configuration(),
                                 sota_config],
        ).run()
        try:
            tuned = result.best("runtime_s", constraints)
            break
        except OptimizationError:
            continue
    if tuned is None:
        raise OptimizationError(
            "headline search found no configuration satisfying "
            f"{constraints} after 3 escalating attempts"
        )
    # Final polish: coordinate-descent local search around the found point
    # (HyperMapper's refinement phase).
    tuned, _ = local_refine(space, evaluator, tuned, constraints,
                            objective="runtime_s", max_rounds=3)
    default = evaluator.evaluate(space.default_configuration())
    sota = evaluator.evaluate(sota_config)
    return HeadlineResult(
        default=default,
        state_of_the_art=sota,
        tuned=tuned,
        constraints=constraints,
    )
