"""Regenerate the paper: every figure into one report directory.

The artifact-evaluation entry point::

    python -m repro.experiments.run_all out/            # paper scale
    python -m repro.experiments.run_all out/ --quick    # minutes, smaller

Writes, under the output directory:

* ``fig1_gui.txt``       — the live metric stream + model render (E1)
* ``fig2_dse.txt``/``.csv`` — exploration summary + every sample (E2a)
* ``fig2_knowledge.txt`` — the extracted rules (E2b)
* ``fig3_android.txt``/``.csv`` — the 83-device speed-ups (E3)
* ``headline.txt``       — the ODROID 1 W result (E4)
* ``backends.txt``       — the cross-implementation table (E5)
* ``algorithms.txt``     — the cross-algorithm table (E6)
* ``INDEX.txt``          — what was run, at which scale
"""

from __future__ import annotations

import os
import sys

from ..core.report import format_table, write_csv
from ..errors import ReproError
from ..hypermapper import (
    ConstraintSet,
    accuracy_limit,
    exploration_summary,
    format_knowledge,
    save_exploration_csv,
)
from ..telemetry import stage
from . import algorithms, backends, fig1_gui, fig2_dse, fig3_android, headline

#: (quick, full) scale knobs.
_SCALES = {
    "fig1_frames": (8, 20),
    "fig2_random": (80, 250),
    "fig2_initial": (30, 50),
    "fig2_iterations": (6, 16),
    "fig3_frames": (10, 30),
    "algo_frames": (10, 20),
}


def _scale(name: str, quick: bool) -> int:
    return _SCALES[name][0 if quick else 1]


def run_all(out_dir: str, quick: bool = False, seed: int = 1) -> dict:
    """Run every experiment; return ``{artefact_name: path}``."""
    os.makedirs(out_dir, exist_ok=True)
    written: dict = {}
    index_lines = [
        f"repro report ({'quick' if quick else 'paper'} scale), seed {seed}",
        "",
    ]

    def emit(name: str, text: str) -> None:
        path = os.path.join(out_dir, name)
        with open(path, "w") as f:
            f.write(text if text.endswith("\n") else text + "\n")
        written[name] = path
        index_lines.append(f"- {name}")

    # One telemetry-clocked span covers the whole regeneration; its
    # duration lands in INDEX.txt (RPR001: telemetry owns the clock).
    with stage(None, "experiments.run_all", quick=quick) as timed:
        # E1 ---------------------------------------------------------------
        stream = fig1_gui.run(n_frames=_scale("fig1_frames", quick),
                              width=80, height=60, seed=seed)
        emit("fig1_gui.txt", stream.table() + "\n" + stream.render_ascii())

        # E2 ---------------------------------------------------------------
        figure2 = fig2_dse.run_surrogate(
            n_random=_scale("fig2_random", quick),
            n_initial=_scale("fig2_initial", quick),
            n_iterations=_scale("fig2_iterations", quick),
            samples_per_iteration=8,
            seed=seed,
        )
        constraints = ConstraintSet.of(
            [accuracy_limit(figure2.accuracy_limit_m)]
        )
        emit(
            "fig2_dse.txt",
            format_table(figure2.summary_rows(), title="Figure 2 summary")
            + "\n" + exploration_summary(figure2.active_result, constraints),
        )
        save_exploration_csv(figure2.active_result,
                             os.path.join(out_dir, "fig2_dse.csv"))
        written["fig2_dse.csv"] = os.path.join(out_dir, "fig2_dse.csv")
        index_lines.append("- fig2_dse.csv")
        emit("fig2_knowledge.txt", format_knowledge(figure2.knowledge))

        # E4 (before E3, which reuses the tuned configuration) ---------------
        head = headline.run(seed=seed + 6)
        emit(
            "headline.txt",
            format_table(head.rows(), title="ODROID-XU3 headline")
            + f"\nvs state of the art: {head.time_improvement_vs_sota:.1f}x "
            f"time, {head.power_reduction_vs_sota:.1f}x power "
            f"(paper: 4.8x / 2.8x)\n"
            f"real-time within 1 W: {head.realtime_within_budget}\n",
        )

        # E3 ---------------------------------------------------------------
        figure3 = fig3_android.run(head.tuned.configuration,
                                   n_frames=_scale("fig3_frames", quick),
                                   seed=seed)
        emit(
            "fig3_android.txt",
            figure3.histogram()
            + "\n" + format_table(figure3.by_form_factor,
                                  title="By form factor")
            + "\n" + format_table(figure3.drivers[:4],
                                  title="Speed-up drivers"),
        )
        write_csv(
            [
                {
                    "device": r.device, "year": r.year,
                    "default_fps": r.default_fps, "tuned_fps": r.tuned_fps,
                    "speedup": r.speedup,
                }
                for r in figure3.runs
            ],
            os.path.join(out_dir, "fig3_android.csv"),
        )
        written["fig3_android.csv"] = os.path.join(out_dir, "fig3_android.csv")
        index_lines.append("- fig3_android.csv")

        # E5 / E6 -----------------------------------------------------------
        emit("backends.txt",
             format_table(backends.run().rows, title="Backends (E5)"))
        emit(
            "algorithms.txt",
            format_table(
                algorithms.run(n_frames=_scale("algo_frames", quick)).rows,
                title="Algorithms x datasets (E6)",
            ),
        )

    index_lines.append("")
    index_lines.append(f"total wall time: {timed.duration_s:.0f} s")
    emit("INDEX.txt", "\n".join(index_lines))
    return written


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    quick = "--quick" in args
    args = [a for a in args if a != "--quick"]
    out_dir = args[0] if args else "repro_report"
    try:
        written = run_all(out_dir, quick=quick)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"wrote {len(written)} artefacts to {out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
