"""Experiment E3 — Figure 3: KinectFusion speed-ups across 83 phones.

The OpenCL KinectFusion was run on 83 smartphones/tablets; for each, the
speed-up of the ODROID-XU3 HyperMapper configuration over the default was
computed.  Reproduction: obtain the tuned configuration from the headline
co-design search (or accept one), strip its device-specific platform
knobs, and run the campaign over the 83-device database.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crowd.analysis import CampaignSummary, by_group, speedup_drivers, summarize
from ..crowd.campaign import DeviceRun, run_campaign
from . import headline


@dataclass
class AndroidFigure:
    """The data behind Figure 3."""

    tuned_configuration: dict
    runs: list[DeviceRun]
    summary: CampaignSummary
    by_year: list[dict]
    by_form_factor: list[dict]
    drivers: list[dict]

    def histogram(self) -> str:
        return self.summary.histogram()


def run(
    tuned_configuration: dict | None = None,
    n_frames: int = 30,
    seed: int = 0,
    headline_seed: int = 7,
    workers: int = 1,
) -> AndroidFigure:
    """Regenerate Figure 3.

    Args:
        tuned_configuration: the HyperMapper ODROID configuration; when
            ``None`` the headline search (E4) is run first, exactly as the
            paper's pipeline did.
        n_frames: frames in the simulated benchmark run per device.
        seed: campaign seed (field factors, portability factors).
        headline_seed: seed for the headline search when it must run.
        workers: fan the 83 devices out over this many worker processes
            (results are identical at any worker count).
    """
    if tuned_configuration is None:
        tuned_configuration = headline.run(seed=headline_seed).tuned.configuration
    runs = run_campaign(tuned_configuration, n_frames=n_frames, seed=seed,
                        workers=workers)
    return AndroidFigure(
        tuned_configuration=dict(tuned_configuration),
        runs=runs,
        summary=summarize(runs),
        by_year=by_group(runs, "year"),
        by_form_factor=by_group(runs, "form_factor"),
        drivers=speedup_drivers(runs, seed=seed),
    )
