"""Experiment E5 — cross-implementation comparison.

SLAMBench's core pitch: the same algorithm in C++, OpenMP, OpenCL and
CUDA, compared on speed/power on a given device.  Reproduction: simulate
the default configuration's analytic workload under every backend the
device supports (the ODROID runs cpp/openmp/opencl; the desktop adds
CUDA).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kfusion.params import KFusionParams
from ..kfusion.workload_model import sequence_workloads
from ..platforms.backends import available_backends
from ..platforms.device import DeviceModel
from ..platforms.odroid import desktop_gtx, odroid_xu3
from ..platforms.simulator import PerformanceSimulator, PlatformConfig


@dataclass
class BackendComparison:
    """Per-backend speed/power rows for a set of devices."""

    rows: list


def run(
    devices: list[DeviceModel] | None = None,
    params: KFusionParams | None = None,
    width: int = 320,
    height: int = 240,
    n_frames: int = 30,
) -> BackendComparison:
    """Simulate every supported backend on every device."""
    devices = devices if devices is not None else [odroid_xu3(), desktop_gtx()]
    params = params if params is not None else KFusionParams()
    workloads = sequence_workloads(params, width, height, n_frames)

    rows = []
    for device in devices:
        for backend in available_backends(device):
            sim = PerformanceSimulator(
                device, PlatformConfig(backend=backend.name)
            )
            res = sim.simulate(workloads)
            rows.append(
                {
                    "device": device.name,
                    "backend": backend.name,
                    "frame_time_s": res.mean_frame_time_s,
                    "fps": res.fps,
                    "power_w": res.average_power_w,
                    "energy_per_frame_j": res.energy_per_frame_j,
                }
            )
    return BackendComparison(rows=rows)
