"""Experiment E1 — Figure 1: the SLAMBench GUI's live metric stream.

The GUI shows RGB/depth frames, the tracking status, the current values
of the performance metrics (speed, power, accuracy), and a shaded render
of the map being built.  Headless reproduction: one pass of KinectFusion
over a sequence produces the per-frame metric table, the final map
quality against the generating scene, and the model render (ASCII-art
rendered for terminals).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.report import format_table
from ..datasets import icl_nuim
from ..geometry import se3
from ..kfusion.pipeline import KinectFusion
from ..kfusion.render import ascii_render
from ..metrics.reconstruction import ReconstructionResult, reconstruction_error
from ..platforms.odroid import odroid_xu3
from ..platforms.simulator import PerformanceSimulator, PlatformConfig
from ..telemetry import stage


@dataclass
class GuiStream:
    """The data behind the GUI: per-frame rows, summary, model render."""

    rows: list
    summary: dict
    reconstruction: ReconstructionResult | None
    model_render: np.ndarray | None

    def table(self) -> str:
        return format_table(
            self.rows,
            columns=[
                "frame", "status", "frame_time_ms", "power_w",
                "ate_so_far_m", "valid_depth",
            ],
            title="SLAMBench live metrics (Figure 1, textual)",
        )

    def render_ascii(self, width: int = 64) -> str:
        """The GUI's right panel as terminal art."""
        if self.model_render is None:
            return "(no render)"
        return ascii_render(self.model_render, width=width)


def run(
    sequence_name: str = "lr_kt0",
    n_frames: int = 20,
    width: int = 80,
    height: int = 60,
    volume_resolution: int = 128,
    seed: int = 0,
) -> GuiStream:
    """Run the GUI experiment at laptop scale (single pipeline pass)."""
    sequence = icl_nuim.load(
        sequence_name, n_frames=n_frames, width=width, height=height, seed=seed
    )
    system = KinectFusion(publish_render=True)
    system.new_configuration().update(
        {"volume_resolution": volume_resolution, "volume_size": 5.0,
         "integration_rate": 1}
    )
    system.init(sequence.sensors)

    simulator = PerformanceSimulator(odroid_xu3(),
                                     PlatformConfig(backend="opencl"))
    gt = sequence.ground_truth().relative(0)

    rows = []
    est_positions = []
    first_pose = None
    render = None
    statuses_ok = 0
    try:
        for frame in sequence:
            with stage(None, "frame", frame=frame.index) as timed:
                system.update_frame(frame.without_ground_truth())
                status = system.process_once()
                system.update_outputs()
            wall = timed.duration_s

            pose = system.outputs.pose()
            if first_pose is None:
                first_pose = pose
            rel = se3.inverse(first_pose) @ pose
            est_positions.append(rel[:3, 3])

            sim = simulator.simulate([system.last_workload()])
            i = frame.index
            err = float(
                np.linalg.norm(
                    np.stack(est_positions) - gt.positions[: i + 1], axis=-1
                ).max()
            )
            if status.value in ("ok", "bootstrap"):
                statuses_ok += 1
            rows.append(
                {
                    "frame": i,
                    "status": status.value,
                    "frame_time_ms": sim.mean_frame_time_s * 1e3,
                    "power_w": sim.average_power_w,
                    "ate_so_far_m": err,
                    "valid_depth": frame.valid_depth_fraction(),
                    "wall_time_ms": wall * 1e3,
                }
            )
        render = system.outputs.get("model_render").value

        recon = None
        if system.volume is not None and first_pose is not None:
            world_from_volume = (
                sequence.trajectory[0] @ se3.inverse(first_pose)
            )
            recon = reconstruction_error(
                system.volume, sequence.scene, world_from_volume
            )
    finally:
        system.clean()

    summary = {
        "frames": len(rows),
        "tracked_fraction": statuses_ok / max(len(rows), 1),
        "ate_max_m": rows[-1]["ate_so_far_m"] if rows else float("nan"),
        "mean_frame_time_ms": float(
            np.mean([r["frame_time_ms"] for r in rows])
        ),
    }
    return GuiStream(
        rows=rows, summary=summary, reconstruction=recon, model_render=render
    )
