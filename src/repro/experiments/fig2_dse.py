"""Experiment E2 — Figure 2: the design-space exploration methodology.

Left/middle panels: random sampling first, then active learning with the
random-forest model; every evaluated configuration is a point in the
(runtime, Max ATE) plane, with the 0.05 m accuracy limit and the default
configuration marked, and the best (Pareto) configurations extracted.
Right panel: decision-tree knowledge extraction (E2b).

The paper-scale run uses the surrogate evaluator (DESIGN.md,
substitutions); ``run_measured_demo`` performs the same exploration with
the real pipeline at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets import icl_nuim
from ..hypermapper.constraints import ConstraintSet, accuracy_limit
from ..hypermapper.evaluator import Evaluation, MeasuredEvaluator
from ..hypermapper.knowledge import CriterionKnowledge, extract_knowledge
from ..hypermapper.optimizer import (
    ExplorationResult,
    HyperMapper,
    random_exploration,
)
from ..hypermapper.space import kfusion_design_space
from ..hypermapper.surrogate import SurrogateEvaluator
from ..platforms.odroid import odroid_xu3
from ..platforms.simulator import PlatformConfig


@dataclass
class DSEFigure:
    """The data of Figure 2."""

    random_result: ExplorationResult
    active_result: ExplorationResult
    default_evaluation: Evaluation
    accuracy_limit_m: float
    best_random: Evaluation | None
    best_active: Evaluation | None
    knowledge: list[CriterionKnowledge]

    def scatter_points(self, which: str = "active") -> np.ndarray:
        """(runtime, max_ate) scatter for one strategy (finite points)."""
        result = self.active_result if which == "active" else self.random_result
        pts = result.objective_matrix(("runtime_s", "max_ate_m"))
        return pts[np.all(np.isfinite(pts), axis=1)]

    def summary_rows(self) -> list[dict]:
        rows = []
        for label, ev in (
            ("default", self.default_evaluation),
            ("best_random", self.best_random),
            ("best_active", self.best_active),
        ):
            if ev is None:
                continue
            rows.append(
                {
                    "strategy": label,
                    "runtime_s": ev.runtime_s,
                    "fps": ev.fps,
                    "max_ate_m": ev.max_ate_m,
                    "power_w": ev.power_w,
                    "feasible": ev.max_ate_m < self.accuracy_limit_m,
                }
            )
        return rows


def _make_runner(evaluator, workers: int, store_path: str | None,
                 resume: bool, seed: int):
    """A JobRunner when the caller asked for parallelism or persistence."""
    if workers <= 1 and store_path is None:
        return None
    from ..jobs import EvaluationStore, JobRunner

    store = None
    if store_path is not None:
        store = EvaluationStore.open(
            store_path, context=evaluator.fingerprint(), resume=resume
        )
    return JobRunner(workers=workers, store=store, seed=seed)


def _close_runner(runner) -> None:
    if runner is None:
        return
    store = runner.store
    runner.close()
    if store is not None:
        store.close()


def run_surrogate(
    n_random: int = 200,
    n_initial: int = 40,
    n_iterations: int = 16,
    samples_per_iteration: int = 10,
    sequence_name: str = "lr_kt0",
    limit_m: float = 0.05,
    seed: int = 0,
    workers: int = 1,
    store_path: str | None = None,
    resume: bool = False,
    backend_dimension: bool = False,
) -> DSEFigure:
    """Paper-scale Figure 2 with the surrogate evaluator.

    ``workers > 1`` fans each evaluation batch over a
    :class:`repro.jobs.JobRunner` pool; ``store_path`` adds the on-disk
    evaluation store (cross-run memoization), which with ``resume`` lets
    a killed exploration pick up where it stopped.
    ``backend_dimension`` adds ``kernel_backend`` to the explored space
    (``repro dse`` passes it; the committed golden DSE outputs were
    produced without it).
    """
    space = kfusion_design_space(kernel_backend=backend_dimension)
    constraints = ConstraintSet.of([accuracy_limit(limit_m)])

    evaluator = SurrogateEvaluator(sequence_name=sequence_name, seed=seed)
    runner = _make_runner(evaluator, workers, store_path, resume, seed)
    try:
        active = HyperMapper(
            space,
            evaluator,
            constraint=constraints,
            n_initial=n_initial,
            n_iterations=n_iterations,
            samples_per_iteration=samples_per_iteration,
            seed=seed,
            seed_configurations=[space.default_configuration()],
            runner=runner,
        ).run()
        rand = random_exploration(
            space,
            SurrogateEvaluator(sequence_name=sequence_name, seed=seed),
            n_random,
            seed=seed + 1,
            runner=runner,
        )
        default_eval = evaluator.evaluate(space.default_configuration())
    finally:
        _close_runner(runner)

    def best_or_none(result):
        try:
            return result.best("runtime_s", constraints)
        except Exception:
            return None

    return DSEFigure(
        random_result=rand,
        active_result=active,
        default_evaluation=default_eval,
        accuracy_limit_m=limit_m,
        best_random=best_or_none(rand),
        best_active=best_or_none(active),
        knowledge=extract_knowledge(active),
    )


def run_measured_demo(
    n_initial: int = 8,
    n_iterations: int = 2,
    samples_per_iteration: int = 3,
    n_frames: int = 8,
    width: int = 80,
    height: int = 60,
    limit_m: float = 0.08,
    seed: int = 0,
    workers: int = 1,
    store_path: str | None = None,
    resume: bool = False,
) -> DSEFigure:
    """Small measured-pipeline exploration (minutes, not hours).

    The accuracy limit is looser than the paper's because the demo runs at
    reduced resolution and sequence length, where the ATE floor is higher.
    The measured pipeline is where ``workers``/``store_path`` actually pay:
    each evaluation runs the full frame loop.
    """
    sequence = icl_nuim.load(
        "lr_kt0", n_frames=n_frames, width=width, height=height, seed=seed
    )
    space = kfusion_design_space()
    constraints = ConstraintSet.of([accuracy_limit(limit_m)])
    evaluator = MeasuredEvaluator(
        sequence, odroid_xu3(), PlatformConfig(backend="opencl")
    )
    runner = _make_runner(evaluator, workers, store_path, resume, seed)
    try:
        active = HyperMapper(
            space,
            evaluator,
            constraint=constraints,
            n_initial=n_initial,
            n_iterations=n_iterations,
            samples_per_iteration=samples_per_iteration,
            candidate_pool=200,
            seed=seed,
            runner=runner,
        ).run()
        rand = random_exploration(
            space, evaluator, len(active.evaluations), seed=seed + 1,
            runner=runner,
        )
        default_eval = evaluator.evaluate(space.default_configuration())
    finally:
        _close_runner(runner)

    def best_or_none(result):
        try:
            return result.best("runtime_s", constraints)
        except Exception:
            return None

    knowledge = []
    try:
        knowledge = extract_knowledge(active)
    except Exception:
        pass  # too few samples at demo scale is acceptable

    return DSEFigure(
        random_result=rand,
        active_result=active,
        default_evaluation=default_eval,
        accuracy_limit_m=limit_m,
        best_random=best_or_none(rand),
        best_active=best_or_none(active),
        knowledge=knowledge,
    )
