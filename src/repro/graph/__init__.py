"""Composable stage-graph pipeline runtime.

``repro.graph`` decomposes SLAM pipelines into declarative graphs of
registered stages, the way SLAMBench2 makes algorithms pluggable behind
a common stage API:

* :mod:`~repro.graph.stage` — stage specs (ports + contracts, workspace
  needs, effect budgets) and the write-once stage registry;
* :mod:`~repro.graph.spec` — declarative graphs (nodes, edges, stream
  taps) and the graph-definition registry;
* :mod:`~repro.graph.compiler` — the runtime compiler: topology,
  contract and cycle validation, deterministic scheduling, compile-time
  arena planning, effect-budget checks against ``ARCHITECTURE.toml``;
* :mod:`~repro.graph.instance` — the compiled, executable pipeline;
* :mod:`~repro.graph.taps` — stream-tap samplers (intermediate frames
  -> telemetry spans);
* :mod:`~repro.graph.diffrun` — the differential harness proving a
  graph pipeline equivalent to its legacy call sequence frame-by-frame.

``KinectFusion`` and the baselines are thin graph definitions over this
runtime (``repro.kfusion.graphdef``, ``repro.baselines.graphdef``);
kernel backends stay orthogonal via :mod:`repro.perf`.  See DESIGN.md
S19.
"""

from ..errors import GraphError, StageExecutionError
from .compiler import CompiledNode, WorkspacePlan, compile_graph
from .instance import PipelineInstance
from .spec import (
    ArenaRegion,
    Edge,
    GraphSpec,
    TapSpec,
    create_graph,
    graph_factory,
    graph_names,
    register_graph,
)
from .stage import (
    Port,
    StageContext,
    StageSpec,
    WorkspaceRequest,
    get_stage,
    register_stage,
    stage_names,
)
from .taps import default_sampler

__all__ = [
    "ArenaRegion",
    "CompiledNode",
    "Edge",
    "GraphError",
    "GraphSpec",
    "PipelineInstance",
    "Port",
    "StageContext",
    "StageExecutionError",
    "StageSpec",
    "TapSpec",
    "WorkspacePlan",
    "WorkspaceRequest",
    "compile_graph",
    "create_graph",
    "default_sampler",
    "get_stage",
    "graph_factory",
    "graph_names",
    "register_graph",
    "register_stage",
    "stage_names",
]
