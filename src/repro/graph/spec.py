"""Declarative pipeline graphs: nodes, edges, taps, and their registry.

A :class:`GraphSpec` is the *definition* of a pipeline — pure data, no
behaviour: which registered stages run (as named nodes), how their ports
wire together (edges), and where intermediate streams are sampled into
telemetry (taps).  The runtime compiler (:mod:`repro.graph.compiler`)
turns a spec into an executable
:class:`~repro.graph.instance.PipelineInstance`.

Algorithms register their graph *factories* here the same way SLAM
systems register in :mod:`repro.core.registry`: ``repro graph check``
compiles every registered definition, so a broken wiring fails the lint
exit-code contract instead of a user's run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

from ..errors import GraphError


@dataclass(frozen=True)
class Edge:
    """One directed value wire: ``src.src_port -> dst.dst_port``."""

    src: str
    src_port: str
    dst: str
    dst_port: str

    @property
    def label(self) -> str:
        """Human-readable edge name used in every compiler error."""
        return f"{self.src}.{self.src_port} -> {self.dst}.{self.dst_port}"


@dataclass(frozen=True)
class ArenaRegion:
    """Declared lifetime of one arena buffer family.

    The :class:`~repro.perf.FrameWorkspace` arena is partitioned by
    buffer-name prefix; a region declares which stage writes buffers
    under ``prefix``, which later stages read them, and whether they
    must survive into the next frame (``cross_frame`` — e.g. the
    raycast model the *next* frame's tracker aligns against).  The
    static liveness verifier (RPR013, :mod:`repro.analysis.dataflow`)
    checks these declarations against the deterministic schedule and
    the buffer names the reachable kernels actually touch.

    Attributes:
        prefix: buffer-name prefix (``"pyr_"``); the longest matching
            prefix owns a buffer, so ``"pyr_v"`` can carve a longer-
            lived sub-family out of ``"pyr_"``.
        writer: node that allocates/writes buffers in this region.
        readers: nodes that read them after the writer ran; empty for
            writer-private scratch.
        cross_frame: buffers stay live across the frame boundary, so
            the region is never release-able within a frame.
    """

    prefix: str
    writer: str
    readers: tuple[str, ...] = ()
    cross_frame: bool = False


@dataclass(frozen=True)
class TapSpec:
    """A stream tap: sample one node output into telemetry spans.

    Attributes:
        node: graph node whose output is observed.
        port: the node's output port name.
        every: sample every N-th frame (1 = every frame).
        sampler: ``f(value) -> dict`` of JSON-safe span attributes;
            defaults to :func:`repro.graph.taps.default_sampler`.  The
            sampler receives the live edge value and MUST NOT mutate it
            — taps are proven non-perturbing by the golden suite.
        name: span name override (default ``tap.<node>.<port>``).
    """

    node: str
    port: str
    every: int = 1
    sampler: Callable[[Any], dict] | None = None
    name: str = ""

    @property
    def span_name(self) -> str:
        return self.name or f"tap.{self.node}.{self.port}"


@dataclass(frozen=True)
class GraphSpec:
    """A declarative pipeline graph over registered stages.

    Attributes:
        name: graph identifier (``"kfusion"``).
        nodes: ``(node_name, stage_name)`` pairs; the node name is local
            to the graph and becomes the telemetry span / workload stage
            name, the stage name looks up the registry.
        edges: port wiring between nodes.
        taps: stream taps on node outputs.
        regions: declared arena-buffer lifetimes (:class:`ArenaRegion`)
            for the static liveness verifier; empty when the graph's
            stages never touch the workspace arena.
    """

    name: str
    nodes: tuple[tuple[str, str], ...]
    edges: tuple[Edge, ...] = ()
    taps: tuple[TapSpec, ...] = field(default_factory=tuple)
    regions: tuple[ArenaRegion, ...] = ()

    def with_tap(self, node: str, port: str, every: int = 1,
                 sampler: Callable[[Any], dict] | None = None,
                 name: str = "") -> "GraphSpec":
        """A copy of this spec with one more stream tap attached."""
        tap = TapSpec(node=node, port=port, every=every, sampler=sampler,
                      name=name)
        return replace(self, taps=self.taps + (tap,))

    def with_taps(self, taps) -> "GraphSpec":
        """A copy of this spec with ``taps`` (TapSpec iterable) appended."""
        return replace(self, taps=self.taps + tuple(taps))

    def node_names(self) -> list[str]:
        return [name for name, _ in self.nodes]


_GRAPHS: dict[str, Callable[..., GraphSpec]] = {}


def register_graph(name: str, factory: Callable[..., GraphSpec]) -> None:
    """Register a graph-definition factory under ``name``."""
    if name in _GRAPHS:
        raise GraphError(f"graph {name!r} already registered")
    # effect-ok: import-time write-once registry (duplicates rejected above)
    _GRAPHS[name] = factory


def create_graph(name: str, **kwargs) -> GraphSpec:
    """Instantiate a registered graph definition."""
    try:
        factory = _GRAPHS[name]
    except KeyError:
        raise GraphError(
            f"unknown graph {name!r}; registered: {graph_names()}"
        ) from None
    return factory(**kwargs)


def graph_factory(name: str) -> Callable[..., GraphSpec]:
    """The registered factory itself (``repro dataflow`` anchors its
    findings to the factory's defining module)."""
    try:
        return _GRAPHS[name]
    except KeyError:
        raise GraphError(
            f"unknown graph {name!r}; registered: {graph_names()}"
        ) from None


def graph_names() -> list[str]:
    return sorted(_GRAPHS)
