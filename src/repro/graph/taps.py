"""Stream-tap samplers: intermediate frames -> telemetry span attributes.

A tap fires after its node runs: the compiled pipeline hands the live
edge value to the tap's sampler and emits the returned dict as
attributes on a ``tap.<node>.<port>`` telemetry span (stamped with the
frame index and kernel backend).  Sampling is observation only — the
default sampler reads, never writes, and the golden suite pins that a
tapped run's trajectory is identical to an untapped one.
"""

from __future__ import annotations

import numpy as np


def _summarize_array(arr: np.ndarray) -> dict:
    out = {
        "kind": "ndarray",
        "shape": "x".join(str(s) for s in arr.shape),
        "dtype": str(arr.dtype),
    }
    if arr.size and np.issubdtype(arr.dtype, np.floating):
        finite = np.isfinite(arr)
        n_finite = int(np.count_nonzero(finite))
        out["finite_fraction"] = n_finite / arr.size
        if n_finite:
            sample = arr[finite]
            out["min"] = float(sample.min())
            out["max"] = float(sample.max())
            out["mean"] = float(sample.mean())
    return out


def default_sampler(value) -> dict:
    """JSON-safe summary of one edge value.

    Understands the shapes that flow through the shipped graphs — numpy
    arrays, pyramids (sequences of arrays), reference models (anything
    with ``vertices``/``normals`` arrays), TSDF volumes (anything with a
    ``resolution``) — and degrades to the type name for the rest.
    """
    if isinstance(value, np.ndarray):
        return _summarize_array(value)
    if isinstance(value, (list, tuple)) and value \
            and all(isinstance(v, np.ndarray) for v in value):
        out = _summarize_array(value[0])
        out["kind"] = "pyramid"
        out["levels"] = len(value)
        return out
    if isinstance(value, (bool, int, float)):
        return {"kind": type(value).__name__, "value": float(value)}
    vertices = getattr(value, "vertices", None)
    if isinstance(vertices, np.ndarray):
        out = _summarize_array(vertices)
        out["kind"] = type(value).__name__
        normals = getattr(value, "normals", None)
        if isinstance(normals, np.ndarray):
            flat = normals.reshape(-1, normals.shape[-1])
            out["valid_fraction"] = float(
                np.count_nonzero(np.any(flat != 0.0, axis=-1)) / len(flat)
            )
        return out
    resolution = getattr(value, "resolution", None)
    if resolution is not None:
        return {"kind": type(value).__name__,
                "resolution": int(resolution)}
    return {"kind": type(value).__name__}
