"""Stage specifications and the process-wide stage registry.

A *stage* is one schedulable unit of a SLAM pipeline (preprocess, track,
integrate, ...).  Following SLAMBench2's treatment of algorithm phases as
pluggable artifacts behind a common API, each stage declares everything
the runtime compiler (:mod:`repro.graph.compiler`) needs to place it in
a pipeline graph *without running it*:

* **ports** — named inputs and outputs, each carrying a contract string
  (``"depth.map"``, ``"pyramid.vertices"``).  The compiler only wires an
  edge when the producer and consumer contracts are equal.
* **workspace need** — a byte estimator against the run's
  :class:`~repro.perf.workspace.FrameWorkspace` arena, so the whole
  graph's footprint is planned (and bounded) at compile time instead of
  discovered when a buffer allocation trips the budget mid-run.
* **effect budget** — the :mod:`repro.analysis.effects` vocabulary the
  stage admits to; the compiler cross-checks it against the owning
  layer's ``forbid`` list in ``ARCHITECTURE.toml``.

The registry itself follows the :class:`~repro.perf.KernelBackend`
registry's write-once discipline: duplicate names are rejected, lookups
of unknown names fail loudly with the registered inventory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..analysis.contracts import ContractError
from ..analysis.dataflow import parse_port_contract
from ..analysis.effects import EFFECTS
from ..errors import GraphError


@dataclass(frozen=True)
class Port:
    """One named stage input or output.

    Attributes:
        name: port identifier, unique within the stage's direction
            (``"depth"``, ``"vertices"``).
        contract: port contract under the
            :mod:`repro.analysis.dataflow` grammar — a dotted tag,
            optionally carrying an array spec: ``"track.converged"``,
            ``"depth.map(H,W:f32)"``, ``"pyramid.vertices([H,W,3:f32])"``.
            An edge is only valid between ports whose contracts are
            semantically equal.
    """

    name: str
    contract: str

    def __post_init__(self):
        if not self.name or not self.contract:
            raise GraphError(
                f"port needs a name and a contract, got "
                f"({self.name!r}, {self.contract!r})"
            )
        try:
            parse_port_contract(self.contract)
        except ContractError as exc:
            raise GraphError(f"port {self.name!r}: {exc}") from None


@dataclass
class StageContext:
    """Everything a stage body may read while running one frame.

    The compiled :class:`~repro.graph.instance.PipelineInstance` builds
    one per frame and threads it through every scheduled stage.  Edge
    values travel separately (the instance passes each stage its wired
    inputs); the context carries the frame-invariant surroundings:

    Attributes:
        frame: the input :class:`~repro.core.frame.Frame`.
        workload: the frame's :class:`~repro.core.workload.FrameWorkload`
            kernel record.
        state: the pipeline's cross-frame state object (for KinectFusion,
            the system instance itself: pose, volume, tracking status).
        backend: the run's :class:`~repro.perf.KernelBackend` (``None``
            for pipelines without selectable kernels).
        workspace: the run's :class:`~repro.perf.FrameWorkspace` arena
            (``None`` for workspace-less backends).
        params: the algorithm's parameter object.
    """

    frame: Any = None
    workload: Any = None
    state: Any = None
    backend: Any = None
    workspace: Any = None
    params: Any = None


@dataclass(frozen=True)
class WorkspaceRequest:
    """Inputs a stage's workspace-need estimator sizes against.

    Mirrors the arguments of
    :func:`repro.kfusion.memory.workspace_bytes` so stage-declared needs
    and the arena budget are derived from the same quantities.
    """

    params: Any
    camera: Any  #: sensor-resolution intrinsics (input camera)
    levels: int = 3
    backend: str = ""


@dataclass(frozen=True)
class StageSpec:
    """One registered, schedulable pipeline stage.

    Attributes:
        name: registry-global identifier, dot-scoped by convention
            (``"kfusion.track"``).
        run: the stage body: ``run(ctx, inputs) -> outputs`` where
            ``inputs``/``outputs`` are dicts keyed by port name.  Every
            declared output port must appear in the returned dict.
        inputs: consumed ports (wired by graph edges).
        outputs: produced ports.
        workspace_need: byte estimator ``f(WorkspaceRequest) -> int`` for
            the stage's share of the frame arena; ``None`` declares no
            arena use.
        effects: declared effect budget (:data:`repro.analysis.effects.EFFECTS`
            vocabulary) the compiler validates against ARCHITECTURE.toml.
        workload_timed: record the stage's wall time into the frame
            workload (the four canonical kernel stages do; auxiliary
            stages like the GUI render only get a tracer span).
        description: one-line human summary for ``repro graph show``.
    """

    name: str
    run: Callable[[StageContext, dict], dict]
    inputs: tuple[Port, ...] = ()
    outputs: tuple[Port, ...] = ()
    workspace_need: Callable[[WorkspaceRequest], int] | None = None
    effects: frozenset = frozenset()
    workload_timed: bool = True
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise GraphError("stage needs a non-empty name")
        for direction, ports in (("input", self.inputs),
                                 ("output", self.outputs)):
            names = [p.name for p in ports]
            if len(names) != len(set(names)):
                raise GraphError(
                    f"stage {self.name!r}: duplicate {direction} port "
                    f"names in {names}"
                )
        unknown = set(self.effects) - set(EFFECTS)
        if unknown:
            raise GraphError(
                f"stage {self.name!r} declares unknown effects "
                f"{sorted(unknown)}; vocabulary: {', '.join(EFFECTS)}"
            )

    def input_port(self, name: str) -> Port | None:
        for port in self.inputs:
            if port.name == name:
                return port
        return None

    def output_port(self, name: str) -> Port | None:
        for port in self.outputs:
            if port.name == name:
                return port
        return None


_STAGES: dict[str, StageSpec] = {}


def register_stage(spec: StageSpec) -> StageSpec:
    """Add a stage to the registry (unique names enforced)."""
    if spec.name in _STAGES:
        raise GraphError(f"stage {spec.name!r} already registered")
    # effect-ok: import-time write-once registry (duplicates rejected above)
    _STAGES[spec.name] = spec
    return spec


def get_stage(name: str) -> StageSpec:
    """Look up a registered stage by name."""
    try:
        return _STAGES[name]
    except KeyError:
        raise GraphError(
            f"unknown stage {name!r}; registered: {stage_names()}"
        ) from None


def stage_names() -> list[str]:
    return sorted(_STAGES)


__all__ = [
    "Port",
    "StageContext",
    "StageSpec",
    "WorkspaceRequest",
    "get_stage",
    "register_stage",
    "stage_names",
]
