"""The compiled pipeline: a validated schedule that runs one frame.

A :class:`PipelineInstance` is what the runtime compiler emits: the
deterministic stage schedule with pre-resolved input wiring, the
compile-time workspace plan, and the attached stream taps.  Per frame it

* threads one :class:`~repro.graph.stage.StageContext` through every
  scheduled stage,
* times each stage exactly as the legacy pipeline did — one
  :class:`repro.telemetry.stage` block per node feeding both the frame
  workload's wall times and a backend-stamped tracer span,
* routes produced port values to downstream consumers,
* fires stream taps (sampled telemetry spans) on tapped outputs, and
* converts any exception a stage body raises into
  :class:`~repro.errors.StageExecutionError` naming the stage.
"""

from __future__ import annotations

from ..errors import StageExecutionError
from ..telemetry import current_tracer, stage as timed_stage
from .taps import default_sampler


class PipelineInstance:
    """Executable result of :func:`repro.graph.compiler.compile_graph`."""

    def __init__(self, spec, schedule, workspace_plan=None):
        self.spec = spec
        self.schedule = schedule
        self.workspace_plan = workspace_plan

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def stage_names(self) -> list[str]:
        """Scheduled node names, in execution order."""
        return [node.name for node in self.schedule]

    def __len__(self) -> int:
        return len(self.schedule)

    def run_frame(self, ctx) -> dict:
        """Run every stage once over ``ctx``; returns the edge values.

        The returned dict maps ``(node, port)`` to the produced value —
        primarily for tests and taps; pipelines keep cross-frame state
        on ``ctx.state``.
        """
        values: dict = {}
        frame_index = getattr(ctx.frame, "index", None)
        backend = getattr(ctx.backend, "name", None)
        for node in self.schedule:
            inputs = {
                edge.dst_port: values[(edge.src, edge.src_port)]
                for edge in node.feeds
            }
            attrs = {"frame": frame_index}
            if backend is not None:
                attrs["backend"] = backend
            workload = ctx.workload if node.spec.workload_timed else None
            with timed_stage(workload, node.name, **attrs):
                try:
                    outputs = node.spec.run(ctx, inputs)
                except StageExecutionError:
                    raise
                except Exception as exc:
                    raise StageExecutionError(
                        f"stage {node.name!r} (graph "
                        f"{self.spec.name!r}, frame {frame_index}) "
                        f"raised {type(exc).__name__}: {exc}",
                        stage=node.name,
                        frame_index=frame_index,
                    ) from exc
                outputs = outputs if outputs is not None else {}
                missing = [port.name for port in node.spec.outputs
                           if port.name not in outputs]
                if missing:
                    raise StageExecutionError(
                        f"stage {node.name!r} (graph {self.spec.name!r}) "
                        f"did not produce declared outputs {missing}",
                        stage=node.name,
                        frame_index=frame_index,
                    )
            for port in node.spec.outputs:
                values[(node.name, port.name)] = outputs[port.name]
            for tap in node.taps:
                self._fire_tap(tap, values, frame_index, backend)
        return values

    def _fire_tap(self, tap, values, frame_index, backend) -> None:
        tracer = current_tracer()
        if not tracer.enabled:
            return
        if tap.every > 1 and frame_index is not None \
                and frame_index % tap.every:
            return
        value = values[(tap.node, tap.port)]
        sampler = tap.sampler or default_sampler
        with tracer.span(tap.span_name, frame=frame_index,
                         backend=backend, node=tap.node,
                         port=tap.port) as span:
            span.attrs.update(sampler(value))
