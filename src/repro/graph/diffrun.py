"""Differential harness: legacy call sequence vs compiled stage graph.

The stage-graph refactor's headline deliverable is its *proof*: this
module runs the same algorithm twice over the same sequence — once with
``pipeline="legacy"`` (the historic inline call sequence) and once with
``pipeline="graph"`` (the compiled :class:`~repro.graph.PipelineInstance`)
— stepping both systems frame-by-frame in lockstep and comparing, per
frame, the tracking status and the full 4x4 pose estimate.  At the end
it compares the trajectory's ATE against ground truth.

Both paths call the *same* kernel-backend functions; what the diff
exercises is everything the graph machinery adds around them —
scheduling, context passing, edge plumbing, stream taps — and proves it
non-perturbing.  The pipelines are deterministic, so the expected
divergence is exactly zero (``atol=0.0`` by default).

Used by ``repro graph diff`` and ``tests/test_graph_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.base import Sequence
from ..errors import ConfigurationError, DatasetError
from ..metrics.ate import absolute_trajectory_error
from ..scene.trajectory import Trajectory

#: Algorithms the CLI harness knows how to build in both pipelines.
DIFF_ALGORITHMS = ("kfusion", "icp_odometry")


@dataclass(frozen=True)
class FrameDelta:
    """Per-frame comparison between the legacy and graph pipelines."""

    index: int
    status_legacy: str
    status_graph: str
    pose_abs_diff: float

    def matches(self, atol: float = 0.0) -> bool:
        return (self.status_legacy == self.status_graph
                and self.pose_abs_diff <= atol)


@dataclass
class DiffReport:
    """Outcome of one legacy-vs-graph differential run."""

    algorithm: str
    sequence: str
    backend: str
    atol: float
    frames: list[FrameDelta] = field(default_factory=list)
    ate_legacy: float | None = None
    ate_graph: float | None = None

    @property
    def equivalent(self) -> bool:
        return (
            bool(self.frames)
            and all(d.matches(self.atol) for d in self.frames)
            and (self.ate_legacy is None
                 or self.ate_legacy == self.ate_graph)
        )

    @property
    def first_divergence(self) -> int | None:
        """Index of the first diverging frame, or None when equivalent."""
        for delta in self.frames:
            if not delta.matches(self.atol):
                return delta.index
        return None

    @property
    def max_pose_diff(self) -> float:
        return max((d.pose_abs_diff for d in self.frames), default=0.0)

    def summary(self) -> str:
        verdict = "EQUIVALENT" if self.equivalent else "DIVERGED"
        lines = [
            f"{verdict}: {self.algorithm} on {self.sequence} "
            f"[backend={self.backend}] over {len(self.frames)} frames",
            f"  max |pose_legacy - pose_graph| = {self.max_pose_diff:.3e}"
            f" (atol={self.atol:.1e})",
        ]
        if self.ate_legacy is not None:
            lines.append(
                f"  ATE rmse: legacy={self.ate_legacy:.6f} "
                f"graph={self.ate_graph:.6f}"
            )
        if not self.equivalent:
            idx = self.first_divergence
            if idx is not None:
                delta = next(d for d in self.frames if d.index == idx)
                lines.append(
                    f"  first divergence at frame {idx}: "
                    f"status {delta.status_legacy} vs {delta.status_graph}, "
                    f"pose diff {delta.pose_abs_diff:.3e}"
                )
            else:
                lines.append("  trajectories match per-frame but ATE differs")
        return "\n".join(lines)


def diff_pipelines(
    make_system,
    sequence: Sequence,
    configuration: dict | None = None,
    atol: float = 0.0,
    evaluate_ate: bool = True,
    algorithm: str = "",
    backend: str = "",
) -> DiffReport:
    """Run legacy and graph pipelines in lockstep and compare.

    Args:
        make_system: callable ``(pipeline: str) -> SLAMSystem`` returning
            a fresh system configured for the named execution path.
        sequence: the dataset sequence both systems process.
        configuration: parameter overrides applied to both systems.
        atol: per-element absolute pose tolerance.  The pipelines are
            deterministic, so the default demands bit-identity.
        evaluate_ate: also compare end-to-end ATE (requires ground truth).
        algorithm/backend: labels for the report.
    """
    if len(sequence) == 0:
        raise DatasetError(f"sequence {sequence.name} is empty")

    systems = {}
    for pipeline in ("legacy", "graph"):
        system = make_system(pipeline)
        config = system.new_configuration()
        if configuration:
            config.update(configuration)
        system.init(sequence.sensors)
        systems[pipeline] = system

    report = DiffReport(
        algorithm=algorithm or systems["legacy"].name,
        sequence=sequence.name,
        backend=backend,
        atol=atol,
    )
    poses = {"legacy": [], "graph": []}
    stamps = []
    try:
        for frame in sequence:
            stamps.append(frame.timestamp)
            statuses = {}
            for pipeline, system in systems.items():
                system.update_frame(frame)
                statuses[pipeline] = system.process_once()
                poses[pipeline].append(np.array(system.pose_estimate))
            diff = float(
                np.abs(poses["legacy"][-1] - poses["graph"][-1]).max()
            )
            report.frames.append(FrameDelta(
                index=frame.index,
                status_legacy=statuses["legacy"].name,
                status_graph=statuses["graph"].name,
                pose_abs_diff=diff,
            ))
    finally:
        for system in systems.values():
            system.clean()

    if evaluate_ate:
        reference = sequence.ground_truth()
        for pipeline in ("legacy", "graph"):
            estimated = Trajectory(
                poses=np.stack(poses[pipeline]),
                timestamps=np.asarray(stamps),
            )
            ate = absolute_trajectory_error(estimated, reference)
            if pipeline == "legacy":
                report.ate_legacy = ate.rmse
            else:
                report.ate_graph = ate.rmse
    return report


def make_diff_system(algorithm: str, backend: str = "fast",
                     **kwargs):
    """System factory for :data:`DIFF_ALGORITHMS` by name."""
    if algorithm == "kfusion":
        from ..kfusion import KinectFusion

        def make(pipeline):
            return KinectFusion(kernel_backend=backend, pipeline=pipeline,
                                **kwargs)
        return make
    if algorithm == "icp_odometry":
        from ..baselines import ICPOdometry

        def make(pipeline):
            return ICPOdometry(pipeline=pipeline, **kwargs)
        return make
    raise ConfigurationError(
        f"unknown diff algorithm {algorithm!r}; choices: {DIFF_ALGORITHMS}"
    )
