"""The runtime compiler: GraphSpec -> executable PipelineInstance.

Compilation is where every structural property of a pipeline is proven,
so running a compiled graph can never fail for a *wiring* reason:

1. every node references a registered stage;
2. every edge joins an existing output port to an existing input port
   with **semantically equal contracts** (parsed under the
   :mod:`repro.analysis.dataflow` port grammar — spelling variants of
   one contract are equal, concrete declarations must agree; symbolic
   dims are unified across the whole graph by ``repro dataflow
   check``, RPR011);
3. every input port is fed by exactly one edge (no dangling or
   double-fed inputs);
4. the graph is acyclic — cycles are reported with the named edges that
   form them;
5. the schedule is a *deterministic* topological order (Kahn's
   algorithm with lexicographic tie-breaking), identical across runs
   and interpreter sessions;
6. every tap observes an existing node output;
7. stage-declared workspace needs are summed against the run's arena
   budget (:func:`repro.kfusion.memory.workspace_bytes`) — an
   over-budget plan raises :class:`~repro.errors.PerfError` here, at
   compile time, not when the first frame trips the arena mid-run;
8. stage-declared effect budgets are checked against the owning layer's
   ``forbid`` list in ``ARCHITECTURE.toml`` when a policy is supplied
   (``repro graph check`` does; RPR008/009 enforce the same statically).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.dataflow import parse_port_contract, port_contract_mismatch
from ..errors import GraphError, PerfError
from .instance import PipelineInstance
from .spec import Edge, GraphSpec, TapSpec
from .stage import StageSpec, WorkspaceRequest, get_stage


@dataclass(frozen=True)
class CompiledNode:
    """One scheduled stage: its spec, wired inputs, and attached taps."""

    name: str
    spec: StageSpec
    feeds: tuple[Edge, ...]  #: edges into this node, one per input port
    taps: tuple[TapSpec, ...] = ()


@dataclass(frozen=True)
class WorkspacePlan:
    """Compile-time arena plan: per-stage byte needs against the budget."""

    budget_bytes: int
    needs: tuple[tuple[str, int], ...]  #: (node name, bytes), schedule order

    @property
    def total_bytes(self) -> int:
        return sum(b for _, b in self.needs)

    def breakdown(self) -> str:
        parts = [f"{name}={nbytes}" for name, nbytes in self.needs]
        return ", ".join(parts)


def _check_nodes(spec: GraphSpec) -> dict[str, StageSpec]:
    names = spec.node_names()
    dupes = {n for n in names if names.count(n) > 1}
    if dupes:
        raise GraphError(
            f"graph {spec.name!r}: duplicate node names {sorted(dupes)}"
        )
    if not names:
        raise GraphError(f"graph {spec.name!r} has no nodes")
    return {node: get_stage(stage_name) for node, stage_name in spec.nodes}


def _check_edges(spec: GraphSpec, stages: dict[str, StageSpec]) -> None:
    fed: dict[tuple[str, str], Edge] = {}
    for edge in spec.edges:
        for end, node in (("source", edge.src), ("destination", edge.dst)):
            if node not in stages:
                raise GraphError(
                    f"graph {spec.name!r}: edge {edge.label} references "
                    f"unknown {end} node {node!r}"
                )
        src_port = stages[edge.src].output_port(edge.src_port)
        if src_port is None:
            raise GraphError(
                f"graph {spec.name!r}: edge {edge.label}: node "
                f"{edge.src!r} (stage {stages[edge.src].name!r}) has no "
                f"output port {edge.src_port!r}"
            )
        dst_port = stages[edge.dst].input_port(edge.dst_port)
        if dst_port is None:
            raise GraphError(
                f"graph {spec.name!r}: edge {edge.label}: node "
                f"{edge.dst!r} (stage {stages[edge.dst].name!r}) has no "
                f"input port {edge.dst_port!r}"
            )
        # Semantic comparison (parsed contracts), not raw strings:
        # whitespace/dtype-alias spellings of one contract are equal,
        # while anything declared concretely — tag, rank, dtype, int
        # dims — must agree.  Symbolic dims are edge-compatible with
        # anything; RPR011 (repro dataflow check) unifies them across
        # the whole graph, which a single edge cannot.
        mismatch = port_contract_mismatch(
            parse_port_contract(src_port.contract),
            parse_port_contract(dst_port.contract),
        )
        if mismatch is not None:
            raise GraphError(
                f"graph {spec.name!r}: edge {edge.label}: contract "
                f"mismatch — {edge.src}.{edge.src_port} produces "
                f"{src_port.contract!r} but {edge.dst}.{edge.dst_port} "
                f"expects {dst_port.contract!r} ({mismatch})"
            )
        key = (edge.dst, edge.dst_port)
        if key in fed:
            raise GraphError(
                f"graph {spec.name!r}: input {edge.dst}.{edge.dst_port} "
                f"fed twice (by {fed[key].label} and {edge.label})"
            )
        fed[key] = edge
    for node, stage in stages.items():
        for port in stage.inputs:
            if (node, port.name) not in fed:
                raise GraphError(
                    f"graph {spec.name!r}: input {node}.{port.name} "
                    f"(contract {port.contract!r}) is not fed by any edge"
                )


def _named_cycle(spec: GraphSpec, remaining: set[str]) -> str:
    """Format one cycle among ``remaining`` nodes as its named edges."""
    # ``remaining`` holds every unscheduled node — the cycle itself plus
    # everything downstream of it.  Trim nodes with no successors inside
    # the set until only cycle-bearing nodes are left, so the walk below
    # can never dead-end.
    core = set(remaining)
    while True:
        dead = {
            node for node in core
            if not any(e.src == node and e.dst in core for e in spec.edges)
        }
        if not dead:
            break
        core -= dead
    successors: dict[str, list[Edge]] = {}
    for edge in spec.edges:
        if edge.src in core and edge.dst in core:
            successors.setdefault(edge.src, []).append(edge)
    # Walk until a node repeats; the walk is deterministic (sorted start,
    # first edge in spec order) so the error message is stable too.
    start = min(core)
    path: list[Edge] = []
    seen_at: dict[str, int] = {start: 0}
    node = start
    while True:
        edge = successors[node][0]
        path.append(edge)
        node = edge.dst
        if node in seen_at:
            cycle = path[seen_at[node]:]
            return ", ".join(e.label for e in cycle)
        seen_at[node] = len(path)


def _schedule(spec: GraphSpec, stages: dict[str, StageSpec]) -> list[str]:
    """Deterministic topological order (Kahn, lexicographic ties)."""
    indegree = {node: 0 for node in stages}
    successors: dict[str, list[str]] = {node: [] for node in stages}
    for edge in spec.edges:
        indegree[edge.dst] += 1
        successors[edge.src].append(edge.dst)
    ready = sorted(node for node, deg in indegree.items() if deg == 0)
    order: list[str] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        changed = False
        for succ in successors[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
                changed = True
        if changed:
            ready.sort()
    if len(order) != len(stages):
        remaining = set(stages) - set(order)
        raise GraphError(
            f"graph {spec.name!r} has a cycle through edges: "
            f"{_named_cycle(spec, remaining)}"
        )
    return order


def _check_taps(spec: GraphSpec, stages: dict[str, StageSpec]) -> None:
    for tap in spec.taps:
        if tap.node not in stages:
            raise GraphError(
                f"graph {spec.name!r}: tap {tap.span_name!r} references "
                f"unknown node {tap.node!r}"
            )
        if stages[tap.node].output_port(tap.port) is None:
            raise GraphError(
                f"graph {spec.name!r}: tap {tap.span_name!r}: node "
                f"{tap.node!r} has no output port {tap.port!r}"
            )
        if tap.every < 1:
            raise GraphError(
                f"graph {spec.name!r}: tap {tap.span_name!r}: every="
                f"{tap.every} (must be >= 1)"
            )


def _check_regions(spec: GraphSpec, stages: dict[str, StageSpec]) -> None:
    for region in spec.regions:
        for role, node in (("writer", region.writer),
                           *(("reader", r) for r in region.readers)):
            if node not in stages:
                raise GraphError(
                    f"graph {spec.name!r}: arena region {region.prefix!r} "
                    f"names unknown {role} node {node!r}"
                )
        if not region.prefix:
            raise GraphError(
                f"graph {spec.name!r}: arena region with empty prefix "
                f"(writer {region.writer!r})"
            )


def _plan_workspace(spec: GraphSpec, stages: dict[str, StageSpec],
                    order: list[str], request: WorkspaceRequest,
                    budget_bytes: int) -> WorkspacePlan:
    needs = []
    for node in order:
        estimator = stages[node].workspace_need
        needs.append((node, int(estimator(request)) if estimator else 0))
    plan = WorkspacePlan(budget_bytes=budget_bytes, needs=tuple(needs))
    if plan.total_bytes > budget_bytes:
        raise PerfError(
            f"graph {spec.name!r}: stage workspace needs total "
            f"{plan.total_bytes} bytes, over the {budget_bytes}-byte "
            f"arena budget (kfusion.memory.workspace_bytes); "
            f"per-stage: {plan.breakdown()}"
        )
    return plan


def _check_effects(spec: GraphSpec, stages: dict[str, StageSpec],
                   policy) -> None:
    for node, stage in stages.items():
        if not stage.effects:
            continue
        layer = policy.layer_of(stage.run.__module__)
        if layer is None:
            continue  # policy only governs modules it covers
        banned = sorted(set(stage.effects) & set(layer.forbid))
        if banned:
            raise GraphError(
                f"graph {spec.name!r}: node {node!r} (stage "
                f"{stage.name!r}, module {stage.run.__module__}) declares "
                f"effects {banned} forbidden in layer {layer.name!r} "
                f"({policy.path})"
            )


def compile_graph(
    spec: GraphSpec,
    workspace_request: WorkspaceRequest | None = None,
    arena_budget: int | None = None,
    policy=None,
) -> PipelineInstance:
    """Validate a graph spec and emit an executable pipeline instance.

    Args:
        spec: the declarative graph.
        workspace_request: sizing inputs for stage workspace needs; when
            given together with ``arena_budget``, the compiler plans the
            whole graph's arena footprint and raises
            :class:`~repro.errors.PerfError` if it exceeds the budget.
        arena_budget: the run's arena byte budget
            (``FrameWorkspace.budget_bytes``).
        policy: a loaded :class:`~repro.analysis.policy.ArchPolicy`;
            when given, stage-declared effects are validated against the
            owning layer's forbid list.

    Raises:
        GraphError: any structural defect (unknown stage/node/port,
            contract mismatch, unfed/double-fed input, cycle, bad tap,
            forbidden declared effect).
        PerfError: the planned workspace exceeds the arena budget.
    """
    stages = _check_nodes(spec)
    _check_edges(spec, stages)
    order = _schedule(spec, stages)
    _check_taps(spec, stages)
    _check_regions(spec, stages)
    if policy is not None:
        _check_effects(spec, stages, policy)
    plan = None
    if workspace_request is not None and arena_budget is not None:
        plan = _plan_workspace(spec, stages, order, workspace_request,
                               arena_budget)
    taps_by_node: dict[str, list[TapSpec]] = {}
    for tap in spec.taps:
        taps_by_node.setdefault(tap.node, []).append(tap)
    feeds_by_node: dict[str, list[Edge]] = {}
    for edge in spec.edges:
        feeds_by_node.setdefault(edge.dst, []).append(edge)
    schedule = tuple(
        CompiledNode(
            name=node,
            spec=stages[node],
            feeds=tuple(feeds_by_node.get(node, ())),
            taps=tuple(taps_by_node.get(node, ())),
        )
        for node in order
    )
    return PipelineInstance(spec=spec, schedule=schedule,
                            workspace_plan=plan)
