"""E2b / Figure 2 (right) — decision-tree knowledge extraction.

Regenerates the interpretable rules for the three criteria (accurate /
fast / power-efficient) from a large labelled sample of the design space.
"""

from repro.hypermapper import (
    SurrogateEvaluator,
    extract_knowledge,
    format_knowledge,
    kfusion_design_space,
    random_exploration,
)


def test_fig2_knowledge(benchmark, show):
    def run():
        exploration = random_exploration(
            kfusion_design_space(), SurrogateEvaluator(seed=0), 400, seed=0
        )
        return exploration, extract_knowledge(exploration)

    exploration, knowledge = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_knowledge(knowledge))

    by_name = {k.criterion: k for k in knowledge}
    assert set(by_name) == {"accurate", "fast", "power_efficient"}
    # The figure's headline rules: accuracy is governed by volume
    # resolution / compute-size ratio; the trees must recover that.
    accurate = by_name["accurate"]
    assert accurate.rules, "no accurate region found"
    text = " ".join(str(r) for r in accurate.rules)
    assert "volume_resolution" in text or "compute_size_ratio" in text
    for k in knowledge:
        assert k.tree_accuracy > 0.75
