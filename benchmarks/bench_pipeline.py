"""Wall-clock benchmarks of the full NumPy pipeline (this reproduction's
own speed — SLAMBench's "computation speed" metric applied to itself)."""

import pytest

from repro.core import run_benchmark
from repro.datasets import icl_nuim
from repro.kfusion import KinectFusion


@pytest.fixture(scope="module")
def sequence():
    seq = icl_nuim.load("lr_kt0", n_frames=6, width=80, height=60)
    seq.materialize()
    return seq


@pytest.mark.parametrize("volume_resolution", [96, 128])
def test_kfusion_frame_time(benchmark, sequence, volume_resolution):
    def run():
        return run_benchmark(
            KinectFusion(),
            sequence,
            configuration={
                "volume_resolution": volume_resolution,
                "volume_size": 5.0,
                "integration_rate": 1,
            },
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.collector.tracked_fraction() >= 0.8


def test_compute_ratio_speedup(benchmark, sequence):
    """csr=2 must cut the real wall-clock, not just the model's FLOPs."""

    def run():
        full = run_benchmark(
            KinectFusion(), sequence,
            configuration={"volume_resolution": 64, "volume_size": 5.0,
                           "integration_rate": 1},
        )
        half = run_benchmark(
            KinectFusion(), sequence,
            configuration={"volume_resolution": 64, "volume_size": 5.0,
                           "integration_rate": 1, "compute_size_ratio": 2},
        )
        return full.mean_wall_time_s, half.mean_wall_time_s

    full_t, half_t = benchmark.pedantic(run, rounds=1, iterations=1)
    assert half_t < full_t
