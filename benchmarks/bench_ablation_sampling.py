"""A2 — sample-efficiency ablation: active learning vs random vs LHS.

Measures, at an equal evaluation budget, how each strategy covers the
accuracy-feasible region and how good its best feasible configuration is
— the quantitative backing for Figure 2's "active learning" box.
"""

import numpy as np

import numpy as np

from repro.core import format_table
from repro.hypermapper import (
    ConstraintSet,
    HyperMapper,
    SurrogateEvaluator,
    accuracy_limit,
    hypervolume_2d,
    kfusion_design_space,
    latin_hypercube_sample,
)
from repro.hypermapper.optimizer import ExplorationResult, random_exploration

#: Reference point for the (runtime, max_ate) hypervolume: the default
#: configuration's scale on both axes.
HV_REFERENCE = (0.1, 0.1)


def _lhs_exploration(space, evaluator, n, seed):
    evaluations = [evaluator.evaluate(c)
                   for c in latin_hypercube_sample(space, n, seed=seed)]
    return ExplorationResult(space=space, evaluations=evaluations,
                             method="latin_hypercube",
                             iteration_of=[0] * n)


def test_sampling_strategies(benchmark, show):
    space = kfusion_design_space()
    cons = ConstraintSet.of([accuracy_limit(0.05)])
    budget = 120

    def run():
        rows = []
        for seed in (1, 2):
            active = HyperMapper(
                space, SurrogateEvaluator(seed=seed),
                constraint=accuracy_limit(0.05),
                n_initial=40, n_iterations=10, samples_per_iteration=8,
                seed=seed,
            ).run()
            rand = random_exploration(space, SurrogateEvaluator(seed=seed),
                                      budget, seed=seed + 50)
            lhs = _lhs_exploration(space, SurrogateEvaluator(seed=seed),
                                   budget, seed=seed + 90)
            for result in (active, rand, lhs):
                feasible = result.feasible(cons)
                best_ms = (min(e.runtime_s for e in feasible) * 1e3
                           if feasible else float("nan"))
                pts = result.objective_matrix(("runtime_s", "max_ate_m"))
                pts = pts[np.all(np.isfinite(pts), axis=1)]
                rows.append(
                    {
                        "seed": seed,
                        "strategy": result.method,
                        "evaluations": len(result.evaluations),
                        "feasible": len(feasible),
                        "best_feasible_ms": best_ms,
                        "hypervolume": hypervolume_2d(pts, HV_REFERENCE),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(rows, title="Sampling-strategy ablation "
                                  "(budget ~120 evaluations)"))

    # Across seeds, active learning finds at least as many feasible
    # configurations as either blind strategy.
    def total(method, key="feasible"):
        return sum(r[key] for r in rows if r["strategy"] == method)

    assert total("active_learning") >= total("random_sampling")
    assert total("active_learning") >= total("latin_hypercube")
    # The model-guided front dominates at least as much objective space.
    assert total("active_learning", "hypervolume") >= 0.9 * total(
        "random_sampling", "hypervolume"
    )
