"""Extension — the "decision machine for mobile phones".

The poster's closing paragraph proposes training a model that picks a
KinectFusion configuration per device from the crowdsourced data.  This
bench builds it (portfolio labelling + random-forest classifier over
device features) and evaluates it on held-out devices against the oracle
and against shipping one fixed configuration to everyone.
"""

from repro.core import format_table
from repro.crowd.decision_machine import (
    DecisionMachine,
    PORTFOLIO,
    train_test_devices,
)


def test_decision_machine(benchmark, show):
    def run():
        results = []
        for seed in (0, 1, 2):
            train, test = train_test_devices(test_fraction=0.3, seed=seed)
            machine = DecisionMachine(seed=seed).fit(train)
            ev = machine.evaluate(test, fixed_index=2)
            results.append(
                {
                    "split_seed": seed,
                    "held_out": ev.devices,
                    "exact": ev.exact_match,
                    "within_one": ev.within_one,
                    "realtime": ev.realtime_fraction,
                    "quality_regret": ev.mean_quality_regret,
                    "fixed_regret": ev.mean_quality_loss_fixed,
                }
            )
        return results

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        rows,
        title=f"Decision machine over a {len(PORTFOLIO)}-entry portfolio "
              f"(target 30 FPS; 'fixed' ships portfolio entry 2 to all)",
    ))

    # The machine must choose near-oracle configurations on unseen devices
    # and waste less model quality than any single fixed configuration.
    for row in rows:
        assert row["within_one"] >= 0.8
        assert row["realtime"] >= 0.9
        assert row["quality_regret"] <= row["fixed_regret"]
