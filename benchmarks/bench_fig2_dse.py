"""E2a / Figure 2 (left+middle) — random sampling vs active learning.

Regenerates the (runtime, Max ATE) exploration picture at paper scale
(hundreds of evaluations via the surrogate): the random-sampling cloud,
the active-learning cloud concentrated near the accuracy-feasible front,
the default configuration, and the best configurations.
"""

import numpy as np

from repro.core import format_table
from repro.experiments import fig2_dse
from repro.hypermapper import ConstraintSet, accuracy_limit


def test_fig2_exploration(benchmark, show):
    figure = benchmark.pedantic(
        lambda: fig2_dse.run_surrogate(
            n_random=200, n_initial=50, n_iterations=15,
            samples_per_iteration=10, seed=1,
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for which in ("random", "active"):
        pts = figure.scatter_points(which)
        feasible = pts[pts[:, 1] < figure.accuracy_limit_m]
        rows.append(
            {
                "strategy": which,
                "evaluations": len(pts),
                "feasible": len(feasible),
                "fastest_feasible_ms": (feasible[:, 0].min() * 1e3
                                        if len(feasible) else float("nan")),
                "median_ate_m": float(np.median(pts[:, 1])),
            }
        )
    show(format_table(rows, title="Figure 2: exploration strategies "
                                  "(accuracy limit 0.05 m)"))
    show(format_table(figure.summary_rows(),
                      title="Default vs best configurations"))

    # Paper shape: active learning concentrates near the feasible front —
    # its best feasible point is at least as fast as random's, and the
    # tuned configurations beat the default by a large factor.
    cons = ConstraintSet.of([accuracy_limit(figure.accuracy_limit_m)])
    best_a = figure.best_active
    assert best_a is not None
    assert best_a.max_ate_m < figure.accuracy_limit_m
    assert figure.default_evaluation.runtime_s / best_a.runtime_s > 3.0
    if figure.best_random is not None:
        assert best_a.runtime_s <= figure.best_random.runtime_s * 1.5
    active_feasible = len(figure.active_result.feasible(cons))
    random_feasible = len(figure.random_result.feasible(cons))
    assert active_feasible / len(figure.active_result.evaluations) >= (
        random_feasible / len(figure.random_result.evaluations)
    )
