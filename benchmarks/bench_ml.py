"""A3 — quality/cost of the from-scratch random forest.

HyperMapper's effectiveness depends on the predictive model; this ablation
measures the forest's R² and rank correlation on the actual DSE targets
(log runtime, log Max ATE) as a function of training-set size and tree
count, plus its fit/predict wall-clock.
"""

import numpy as np

from repro.core import format_table
from repro.hypermapper import SurrogateEvaluator, kfusion_design_space, random_sample
from repro.ml import RandomForestRegressor, r2_score, spearman_rank_correlation


def _dataset(n, seed=0):
    space = kfusion_design_space()
    evaluator = SurrogateEvaluator(seed=seed)
    configs = random_sample(space, n, seed=seed)
    X = space.to_feature_matrix(configs)
    evals = [evaluator.evaluate(c) for c in configs]
    y_runtime = np.log10([e.runtime_s for e in evals])
    y_ate = np.log10([e.max_ate_m for e in evals])
    return X, y_runtime, y_ate


def test_forest_quality_vs_budget(benchmark, show):
    X_test, yr_test, ya_test = _dataset(150, seed=99)

    def sweep():
        rows = []
        for n_train in (30, 60, 120):
            for n_trees in (8, 32):
                X, yr, ya = _dataset(n_train, seed=5)
                rf_r = RandomForestRegressor(n_trees=n_trees,
                                             random_state=0).fit(X, yr)
                rf_a = RandomForestRegressor(n_trees=n_trees,
                                             random_state=0).fit(X, ya)
                rows.append(
                    {
                        "n_train": n_train,
                        "n_trees": n_trees,
                        "runtime_r2": r2_score(yr_test,
                                               rf_r.predict(X_test)),
                        "runtime_rank": spearman_rank_correlation(
                            yr_test, rf_r.predict(X_test)),
                        "ate_r2": r2_score(ya_test, rf_a.predict(X_test)),
                        "ate_rank": spearman_rank_correlation(
                            ya_test, rf_a.predict(X_test)),
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(format_table(rows, title="Random-forest quality on the DSE "
                                  "objectives (held-out set)"))

    # The model learns the runtime surface almost perfectly (it is
    # piecewise-analytic in the parameters) and ranks accuracy usefully.
    best = rows[-1]
    assert best["runtime_r2"] > 0.7
    assert best["runtime_rank"] > 0.85
    assert best["ate_rank"] > 0.5
    # More data helps.
    assert rows[-1]["ate_rank"] >= rows[0]["ate_rank"] - 0.1


def test_forest_fit_wall_clock(benchmark):
    X, yr, _ = _dataset(120, seed=3)
    forest = benchmark(
        lambda: RandomForestRegressor(n_trees=24, random_state=0).fit(X, yr)
    )
    assert len(forest.trees) == 24
