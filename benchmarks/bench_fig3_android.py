"""E3 / Figure 3 — speed-ups of the tuned configuration on 83 devices.

Regenerates the crowdsourcing study's speed-up distribution: the
ODROID-tuned configuration (algorithmic parameters only) versus the
default, on every device of the mobile database.
"""

from repro.core import format_table
from repro.crowd import device_table
from repro.experiments import fig3_android

#: A representative HyperMapper result (so this bench does not depend on
#: the E4 search); matches the class of configuration E4 finds.
TUNED = {
    "volume_resolution": 96,
    "volume_size": 4.3,
    "compute_size_ratio": 2,
    "mu_distance": 0.066,
    "icp_threshold": 1e-5,
    "pyramid_iterations_l0": 8,
    "pyramid_iterations_l1": 4,
    "pyramid_iterations_l2": 3,
    "integration_rate": 3,
    "tracking_rate": 1,
}


def test_fig3_android_speedups(benchmark, show):
    figure = benchmark.pedantic(
        lambda: fig3_android.run(TUNED, n_frames=30, seed=0),
        rounds=1,
        iterations=1,
    )

    show(figure.histogram())
    s = figure.summary
    show(
        f"devices: {s.devices}   median: {s.summary.median:.1f}x   "
        f"geomean: {s.geometric_mean:.1f}x   "
        f"range: [{s.summary.minimum:.1f}x, {s.summary.maximum:.1f}x]\n"
        f"real-time (>=25 FPS): default {s.realtime_default}/83 -> "
        f"tuned {s.realtime_tuned}/83"
    )
    show(format_table(figure.by_form_factor,
                      title="By form factor"))
    show(format_table(figure.drivers[:4],
                      title="What drives the speed-up spread "
                            "(forest feature importances)"))
    show(device_table(figure.runs, top=5))

    # Figure shape: 83 devices, everyone speeds up, spread within the
    # figure's 0-14x axis, several-x typical gain.
    assert s.devices == 83
    assert s.summary.minimum > 1.0
    assert s.summary.maximum < 14.0
    assert 3.0 < s.summary.median < 9.0
    assert s.realtime_tuned > s.realtime_default
