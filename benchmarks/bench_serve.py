"""S21 — serving throughput/latency/drop behaviour across load levels.

One fixed heavy-tailed client population (8 clients, 18 frames each,
log-normal frame rates, Pareto arrival clumps) replayed against the
serve engine at three timeline speeds: **light** (offered aggregate rate
well under single-core service capacity), **busy** (offered above
capacity — backpressure starts engaging) and **overload** (whole client
timelines land at once — the bounded ingress queues and latest-wins drop
policy carry the load).  The schedule is identical at every level; only
the virtual→wall mapping changes, so the levels are directly
comparable.

Per level the committed ``BENCH_serve.json`` records sessions/sec, p50
and p95 frame latency, processed/dropped counts and the drop rate.  The
structural assertions are the serving layer's contract, not a perf
number: every session closes (nothing crashes, nothing deadlocks), every
offered frame is accounted processed-or-dropped, and at overload the
drop counter — never a silent stall — absorbs the excess.
"""

import json
from pathlib import Path

from repro.core import format_table
from repro.datasets import icl_nuim
from repro.serve import (
    InProcessTransport,
    LoadSpec,
    ServeEngine,
    ServePolicy,
    run_load,
)

CLIENTS = 8
FRAMES_PER_CLIENT = 18
WIDTH, HEIGHT = 32, 24
SEED = 0
CONFIGURATION = {"volume_resolution": 32, "volume_size": 4.8}
POLICY = dict(queue_capacity=6, frames_per_round=4, drop_policy="oldest")

#: Timeline speed per load level: virtual seconds offered per wall
#: second.  At fps_median=2 the population offers ~16 fps aggregate at
#: speed 1 — far under one core's ~90 fps service capacity at this
#: frame/volume size — and ~2000 fps equivalent at speed 128.
LEVELS = {"light": 1.0, "busy": 16.0, "overload": 128.0}

OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"


def _sequence():
    seq = icl_nuim.load("lr_kt0", n_frames=6, width=WIDTH, height=HEIGHT,
                        seed=SEED)
    seq.materialize()
    return seq


def _run_level(sequence, speed: float) -> dict:
    engine = ServeEngine(InProcessTransport(), policy=ServePolicy(**POLICY))
    spec = LoadSpec(clients=CLIENTS, frames_per_client=FRAMES_PER_CLIENT,
                    mean_interarrival_s=0.05, fps_median=2.0, speed=speed,
                    seed=SEED)
    report = run_load(engine, sequence, spec, algorithm="kfusion",
                      configuration=dict(CONFIGURATION))
    stats = report.engine_stats
    sessions, frames = stats["sessions"], stats["frames"]

    # The serving contract, independent of machine speed.
    assert sessions["crashed"] == 0
    assert sessions["by_state"] == {"closed": CLIENTS}
    assert frames["processed"] + frames["dropped"] == report.offered_frames

    return {
        "speed": speed,
        "wall_s": round(report.wall_s, 3),
        "offered_frames": report.offered_frames,
        "offered_fps": round(report.offered_fps, 2),
        "sessions_per_s": round(CLIENTS / report.wall_s, 2),
        "processed": frames["processed"],
        "dropped": frames["dropped"],
        "drop_rate": round(frames["drop_rate"], 4),
        "latency_p50_s": round(stats["latency"]["p50_s"], 4),
        "latency_p95_s": round(stats["latency"]["p95_s"], 4),
    }


def test_serve_load_levels(benchmark, show):
    sequence = _sequence()

    def run_all():
        return {name: _run_level(sequence, speed)
                for name, speed in LEVELS.items()}

    levels = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Overload must engage backpressure: counted drops, not a stall.
    assert levels["overload"]["dropped"] > 0
    # Bounded queues bound latency: even at overload no frame waited
    # longer than a full queue of service times times the session count.
    assert levels["overload"]["latency_p95_s"] < 60.0

    rows = [{"level": name, **row} for name, row in levels.items()]
    show(format_table(
        rows,
        title=(f"serve: {CLIENTS} clients x {FRAMES_PER_CLIENT} frames, "
               f"{WIDTH}x{HEIGHT}, queue={POLICY['queue_capacity']}, "
               f"budget={POLICY['frames_per_round']}/round"),
    ))

    payload = {
        "benchmark": "serve",
        "clients": CLIENTS,
        "frames_per_client": FRAMES_PER_CLIENT,
        "width": WIDTH,
        "height": HEIGHT,
        "seed": SEED,
        "configuration": CONFIGURATION,
        "policy": POLICY,
        "levels": levels,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    show(f"wrote {OUT_PATH.name}")
