"""E6 — cross-algorithm, cross-dataset comparison.

The framework's reason to exist: different SLAM systems, same datasets,
same metrics.  KinectFusion (dense, mapped) vs frame-to-frame ICP odometry
(mapless) vs the static floor, over living-room and office sequences.
"""

from repro.core import format_table
from repro.experiments import algorithms


def test_algorithm_comparison(benchmark, show):
    comparison = benchmark.pedantic(
        lambda: algorithms.run(
            sequence_names=["lr_kt0", "lr_kt2", "of_desk"], n_frames=16,
        ),
        rounds=1,
        iterations=1,
    )
    show(format_table(comparison.rows,
                      title="Algorithms x datasets (ATE in metres, "
                            "simulated ODROID fps)"))

    for seq in ("lr_kt0", "lr_kt2", "of_desk"):
        by = {r["algorithm"]: r for r in comparison.rows
              if r["sequence"] == seq}
        # The map pays off: dense fusion is at least as accurate as
        # odometry, and both beat the static floor.
        assert by["kfusion"]["ate_max_m"] <= by["icp_odometry"]["ate_max_m"] * 1.7, seq
        assert by["icp_odometry"]["ate_max_m"] < by["static"]["ate_max_m"], seq
        # And costs compute: kfusion is the slowest of the three.
        assert by["kfusion"]["sim_fps"] < by["icp_odometry"]["sim_fps"], seq
