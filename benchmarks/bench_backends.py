"""E5 — cross-implementation comparison (C++ / OpenMP / OpenCL / CUDA).

SLAMBench's core table: the same KinectFusion under every implementation
backend, on the embedded board and the desktop machine.
"""

from repro.core import format_table
from repro.experiments import backends


def test_backend_comparison(benchmark, show):
    comparison = benchmark.pedantic(lambda: backends.run(n_frames=30),
                                    rounds=1, iterations=1)
    show(format_table(comparison.rows,
                      title="Default KinectFusion per backend (simulated)"))

    by = {(r["device"], r["backend"]): r for r in comparison.rows}
    # Paper-shape orderings:
    assert (by[("odroid_xu3", "cpp")]["fps"]
            < by[("odroid_xu3", "openmp")]["fps"]
            < by[("odroid_xu3", "opencl")]["fps"])
    assert by[("desktop_gtx", "cuda")]["fps"] > 30.0  # KFusion's RT claim
    assert by[("odroid_xu3", "opencl")]["fps"] < 20.0  # embedded gap
    # GPU offload is the energy-efficient option on the board.
    assert (by[("odroid_xu3", "opencl")]["energy_per_frame_j"]
            < by[("odroid_xu3", "openmp")]["energy_per_frame_j"])
