"""A1 — per-kernel runtime breakdown vs the dominant parameters.

SLAMBench reports per-kernel timings; this ablation regenerates the
breakdown for the default configuration and shows how the bottleneck
moves: integration dominates at high volume resolution, preprocessing /
tracking take over once the volume is small and the input is downsampled.
Also micro-benchmarks the real NumPy kernels (bilateral filter, ICP
iteration, integration, raycast) — the wall-clock numbers of this
reproduction's own implementation.
"""

import numpy as np
import pytest

from repro.core import format_table
from repro.geometry import PinholeCamera, se3
from repro.kfusion import TSDFVolume
from repro.kfusion.integration import integrate
from repro.kfusion.params import KFusionParams
from repro.kfusion.preprocessing import bilateral_filter
from repro.kfusion.raycast import raycast
from repro.kfusion.workload_model import sequence_workloads
from repro.platforms import PerformanceSimulator, PlatformConfig, odroid_xu3


class TestSimulatedBreakdown:
    def test_breakdown_vs_volume_resolution(self, benchmark, show):
        device = odroid_xu3()

        def sweep():
            rows = []
            for res in (64, 128, 256):
                params = KFusionParams(volume_resolution=res,
                                       integration_rate=1)
                workloads = sequence_workloads(params, 320, 240, 10)
                sim = PerformanceSimulator(
                    device, PlatformConfig(backend="opencl")
                )
                result = sim.simulate(workloads)
                breakdown = result.kernel_breakdown_s()
                total = sum(breakdown.values())
                row = {"volume_resolution": res,
                       "frame_time_ms": result.mean_frame_time_s * 1e3}
                for name in ("integrate", "raycast", "track", "reduce",
                             "bilateral_filter"):
                    row[name + "_%"] = 100.0 * breakdown.get(name, 0.0) / total
                rows.append(row)
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        show(format_table(rows, title="Simulated kernel breakdown vs "
                                      "volume resolution (OpenCL, ODROID)"))

        # The bottleneck shifts: integration share grows cubically.
        assert rows[-1]["integrate_%"] > rows[0]["integrate_%"]
        assert rows[-1]["integrate_%"] > 40.0
        # Tracking's share shrinks as the volume grows.
        assert rows[-1]["track_%"] < rows[0]["track_%"]


class TestRealKernelWallClock:
    """Micro-benchmarks of the NumPy kernels themselves."""

    @pytest.fixture(scope="class")
    def cam(self):
        return PinholeCamera.kinect_like(160, 120)

    @pytest.fixture(scope="class")
    def depth(self, cam):
        rng = np.random.default_rng(0)
        return np.clip(rng.uniform(1.0, 3.0, cam.shape), 0.2, None)

    def test_bilateral_filter(self, benchmark, cam, depth):
        out = benchmark(bilateral_filter, depth)
        assert out.shape == cam.shape

    def test_integrate(self, benchmark, cam, depth):
        pose = se3.make_pose(np.eye(3), [2.5, 2.5, 0.0])

        def run():
            volume = TSDFVolume(64, 5.0)
            return integrate(volume, depth, cam, pose, 0.1)

        updated = benchmark(run)
        assert updated > 0

    def test_raycast(self, benchmark, cam, depth):
        pose = se3.make_pose(np.eye(3), [2.5, 2.5, 0.0])
        volume = TSDFVolume(64, 5.0)
        integrate(volume, depth, cam, pose, 0.1)
        verts, normals = benchmark(raycast, volume, cam, pose, 0.1)
        assert np.any(normals != 0.0)
