"""Ablation — does a configuration tuned on one sequence generalise?

The HyperMapper methodology tunes on a sequence; the PACT'16/iWAPT'17
discussion (summarised by the poster) cares whether the tuned
configuration stays within the accuracy limit on *other* sequences.
This bench tunes on lr_kt0 twice — once right at the 5 cm limit, once
with a safety margin — and evaluates both on the full living-room +
office preset suite.  The at-the-limit configuration overfits the tuning
sequence (it sits on the constraint boundary and breaches it on harder
sequences); the margin restores cross-sequence feasibility at a modest
speed cost.  That is the generalisation caveat the papers discuss, made
quantitative.
"""

from repro.core import format_table
from repro.hypermapper import (
    ConstraintSet,
    HyperMapper,
    SurrogateEvaluator,
    accuracy_limit,
    kfusion_design_space,
)

SEQUENCES = ("lr_kt0", "lr_kt1", "lr_kt2", "lr_kt3", "of_desk", "of_room")
LIMIT_M = 0.05


def _tune(space, limit_m: float, seed: int):
    constraints = ConstraintSet.of([accuracy_limit(limit_m)])
    result = HyperMapper(
        space,
        SurrogateEvaluator(sequence_name="lr_kt0", seed=seed),
        constraint=constraints,
        n_initial=50, n_iterations=10, samples_per_iteration=8, seed=seed,
        # Anchor the model in the feasible region: tight limits are hard
        # to hit by uniform sampling alone.
        seed_configurations=[space.default_configuration()],
    ).run()
    return result.best("runtime_s", constraints)


def test_cross_sequence_generalization(benchmark, show):
    space = kfusion_design_space()

    def run():
        at_limit = _tune(space, LIMIT_M, seed=2)
        with_margin = _tune(space, 0.66 * LIMIT_M, seed=2)

        rows = []
        for label, tuned in (("at_limit", at_limit),
                             ("with_margin", with_margin)):
            for sequence in SEQUENCES:
                evaluator = SurrogateEvaluator(sequence_name=sequence,
                                               seed=2)
                e = evaluator.evaluate(tuned.configuration)
                d = evaluator.evaluate(space.default_configuration())
                rows.append(
                    {
                        "tuning": label,
                        "sequence": sequence,
                        "tuned_ate_m": e.max_ate_m,
                        "feasible": e.max_ate_m < LIMIT_M,
                        "speedup_vs_default": d.runtime_s / e.runtime_s,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(rows, title=f"Tuned on lr_kt0, evaluated everywhere "
                                  f"(limit {LIMIT_M} m)"))

    at_limit = [r for r in rows if r["tuning"] == "at_limit"]
    margin = [r for r in rows if r["tuning"] == "with_margin"]

    # Both keep a clear speed-up everywhere and never diverge.
    for row in rows:
        assert row["speedup_vs_default"] > 2.0
        assert row["tuned_ate_m"] < 0.15

    # The at-the-limit configuration is feasible on its tuning sequence...
    assert at_limit[0]["feasible"]
    # ...the margin generalises to at least as many sequences, covering
    # most of the suite.
    n_at_limit = sum(r["feasible"] for r in at_limit)
    n_margin = sum(r["feasible"] for r in margin)
    assert n_margin >= n_at_limit
    assert n_margin >= len(SEQUENCES) - 1
