"""S16 — serial vs parallel wall-clock for a fixed measured-DSE batch.

A 32-configuration random exploration with the measured evaluator (the
real pipeline at reduced scale) run serially and over the
``repro.jobs`` worker pool.  Each worker count is measured twice: with
configuration chunking disabled (``batch_size=1``, one dispatch per
configuration — the pre-fix behaviour) and with the runner's default
auto-chunking, so the dispatch-overhead amortisation is tracked as its
own ratio (``batching_gain``) independent of how many cores the runner
machine can actually scale onto.  Besides the printed table, the
numbers are written to ``BENCH_parallel_dse.json`` at the repo root so
the scaling behaviour is tracked in-tree; ``cpu_count`` is recorded
because the achievable serial-relative speed-up is bounded by the cores
of the machine that ran it (a single-core container cannot beat serial,
it can only bound the pool's overhead).
"""

import json
import os
from pathlib import Path

from repro.core import format_table
from repro.datasets import icl_nuim
from repro.hypermapper import MeasuredEvaluator, kfusion_design_space
from repro.hypermapper.optimizer import random_exploration
from repro.jobs import JobRunner
from repro.platforms import PlatformConfig, odroid_xu3
from repro.telemetry import monotonic_s

N_CONFIGURATIONS = 32
N_FRAMES = 6
WIDTH, HEIGHT = 64, 48
SEED = 0
WORKER_COUNTS = (2, 4)

OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_parallel_dse.json"


def _evaluator():
    sequence = icl_nuim.load("lr_kt0", n_frames=N_FRAMES, width=WIDTH,
                             height=HEIGHT, seed=SEED)
    return MeasuredEvaluator(sequence, odroid_xu3(),
                             PlatformConfig(backend="opencl"), cache=False)


class _UnbatchedRunner:
    """Adapter pinning ``batch_size=1``: the pre-chunking dispatch path."""

    def __init__(self, runner):
        self._runner = runner

    def evaluate(self, evaluator, configurations):
        return self._runner.evaluate(evaluator, configurations,
                                     batch_size=1)


def _timed_exploration(workers: int, batched: bool = True):
    space = kfusion_design_space()
    evaluator = _evaluator()
    start = monotonic_s()
    if workers == 1:
        result = random_exploration(space, evaluator, N_CONFIGURATIONS,
                                    seed=SEED)
    else:
        with JobRunner(workers=workers, seed=SEED) as runner:
            shim = runner if batched else _UnbatchedRunner(runner)
            result = random_exploration(space, evaluator, N_CONFIGURATIONS,
                                        seed=SEED, runner=shim)
    return monotonic_s() - start, result


def test_parallel_dse_scaling(benchmark, show):
    def run_all():
        serial_s, reference = _timed_exploration(1)
        unbatched, batched = {}, {}
        for workers in WORKER_COUNTS:
            for timings, is_batched in ((unbatched, False), (batched, True)):
                elapsed_s, result = _timed_exploration(workers,
                                                       batched=is_batched)
                # Correctness first: the pool must not change the numbers.
                assert (result.objective_matrix().tobytes()
                        == reference.objective_matrix().tobytes())
                timings[workers] = elapsed_s
        return serial_s, unbatched, batched

    serial_s, unbatched, batched = benchmark.pedantic(run_all, rounds=1,
                                                      iterations=1)

    rows = [{"workers": 1, "wall_s": serial_s, "speedup": 1.0,
             "batching_gain": 1.0}]
    for workers in WORKER_COUNTS:
        rows.append({
            "workers": workers,
            "wall_s": batched[workers],
            "speedup": serial_s / batched[workers],
            "batching_gain": unbatched[workers] / batched[workers],
        })
    show(format_table(
        rows,
        title=(f"parallel DSE: {N_CONFIGURATIONS} measured evaluations "
               f"({os.cpu_count()} CPUs)"),
    ))

    payload = {
        "benchmark": "parallel_dse",
        "n_configurations": N_CONFIGURATIONS,
        "evaluator": "measured",
        "n_frames": N_FRAMES,
        "width": WIDTH,
        "height": HEIGHT,
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "serial_wall_s": round(serial_s, 3),
        "parallel_wall_s": {
            str(w): round(s, 3) for w, s in batched.items()
        },
        "unbatched_wall_s": {
            str(w): round(s, 3) for w, s in unbatched.items()
        },
        "speedup": {
            str(w): round(serial_s / s, 3) for w, s in batched.items()
        },
        "batching_gain": {
            str(w): round(unbatched[w] / batched[w], 3)
            for w in WORKER_COUNTS
        },
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    show(f"wrote {OUT_PATH.name}")
