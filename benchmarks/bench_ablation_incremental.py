"""Ablation — incremental vs joint co-design exploration.

The paper's "key to our approach" sentence: incremental exploration
(domain layer first, then platform knobs) versus searching the joint
14-dimensional space at once.  At equal evaluation budgets the
factorised search should find the triply-constrained (accurate +
real-time + 1 W) point more reliably.
"""

from repro.core import format_table
from repro.hypermapper import (
    ConstraintSet,
    HyperMapper,
    SurrogateEvaluator,
    accuracy_limit,
    codesign_design_space,
    incremental_codesign,
    power_budget,
    realtime,
)


def test_incremental_vs_joint(benchmark, show):
    space = codesign_design_space()
    constraints = ConstraintSet.of(
        [accuracy_limit(0.05), realtime(30.0), power_budget(1.0)]
    )

    def run():
        rows = []
        for seed in (1, 2, 3):
            inc = incremental_codesign(
                space, SurrogateEvaluator(seed=seed), constraints,
                accuracy_limit(0.05),
                domain_budget=(30, 6, 6),
                platform_budget=(8, 3, 4),
                seed=seed,
            )
            joint_result = HyperMapper(
                space, SurrogateEvaluator(seed=seed),
                constraint=constraints,
                n_initial=40,
                n_iterations=(inc.total_evaluations - 40) // 8,
                samples_per_iteration=8,
                seed=seed,
            ).run()
            try:
                joint_best = joint_result.best("runtime_s", constraints)
            except Exception:
                joint_best = None
            for label, best, evals in (
                ("incremental", inc.best, inc.total_evaluations),
                ("joint", joint_best, len(joint_result.evaluations)),
            ):
                rows.append(
                    {
                        "seed": seed,
                        "strategy": label,
                        "evaluations": evals,
                        "found": best is not None,
                        "best_fps": best.fps if best else float("nan"),
                        "power_w": best.power_w if best else float("nan"),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(rows, title="Incremental vs joint co-design "
                                  "(constraints: <5 cm, >30 FPS, <1 W)"))

    inc_found = sum(r["found"] for r in rows if r["strategy"] == "incremental")
    joint_found = sum(r["found"] for r in rows if r["strategy"] == "joint")
    # The factorised search is at least as reliable at equal budget and
    # succeeds on a clear majority of seeds.
    assert inc_found >= joint_found
    assert inc_found >= 2
