"""Ablation — sensor-noise sensitivity of the measured pipeline.

ICL-NUIM ships clean and sensor-noisy variants of every sequence because
accuracy numbers depend on them; this ablation runs the real pipeline
across the noise ladder (noiseless / mild / default / harsh) and shows
accuracy degrading monotonically-in-tendency while the workload stays
constant — noise costs accuracy, not time.
"""

from repro.core import format_table, run_benchmark
from repro.datasets import icl_nuim
from repro.kfusion import KinectFusion
from repro.scene import KinectNoiseModel

CONFIG = {"volume_resolution": 128, "volume_size": 5.0,
          "integration_rate": 1}

LADDER = (
    ("noiseless", KinectNoiseModel.noiseless()),
    ("mild", KinectNoiseModel.mild()),
    ("default", KinectNoiseModel()),
    # ~2x Kinect noise: accuracy degrades but tracking holds.
    ("strong", KinectNoiseModel(0.002, 0.75, 0.005, 0.2, 0.0012)),
    # ~4x Kinect noise: the tracker's quality gate rejects the frames —
    # reported as LOST, exactly what the status output is for.
    ("harsh", KinectNoiseModel.harsh()),
)


def test_noise_ladder(benchmark, show):
    def run():
        rows = []
        for label, model in LADDER:
            sequence = icl_nuim.load("lr_kt0", n_frames=10, width=80,
                                     height=60, noise=model, seed=5)
            result = run_benchmark(KinectFusion(), sequence,
                                   configuration=CONFIG)
            rows.append(
                {
                    "noise": label,
                    "ate_max_m": result.ate.max,
                    "ate_rmse_m": result.ate.rmse,
                    "tracked": result.collector.tracked_fraction(),
                    "valid_depth": float(
                        sum(r.valid_depth_fraction
                            for r in result.collector.records)
                        / len(result.collector.records)
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(rows, title="Sensor-noise ladder (measured pipeline, "
                                  "lr_kt0 at 80x60)"))

    by = {r["noise"]: r for r in rows}
    # Accuracy degrades along the ladder; valid depth shrinks with noise.
    assert by["noiseless"]["ate_rmse_m"] <= by["strong"]["ate_rmse_m"]
    assert by["strong"]["ate_rmse_m"] <= by["harsh"]["ate_rmse_m"] + 1e-9
    assert by["noiseless"]["valid_depth"] > by["harsh"]["valid_depth"]
    # Up to ~2x Kinect noise, tracking holds with graceful accuracy loss.
    assert by["strong"]["tracked"] >= 0.9
    assert by["strong"]["ate_max_m"] < 0.05
    # At ~4x noise the quality gate fires: frames are flagged LOST rather
    # than silently producing bad poses — the framework's contract.
    assert by["harsh"]["tracked"] < by["strong"]["tracked"]
