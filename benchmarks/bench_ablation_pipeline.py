"""Ablations of KinectFusion design choices, on the *measured* pipeline.

DESIGN.md calls out two central design choices the simulated DSE also
leans on; this bench verifies them against the real NumPy pipeline:

* the coarse-to-fine ICP pyramid (vs tracking at the finest level only),
* the frame-to-model tracking (raycast reference) that distinguishes
  KinectFusion from plain frame-to-frame odometry as drift accumulates.
"""

from repro.baselines import ICPOdometry
from repro.core import format_table, run_benchmark
from repro.datasets import icl_nuim
from repro.kfusion import KinectFusion

BASE = {"volume_resolution": 128, "volume_size": 5.0, "integration_rate": 1}


def test_pyramid_ablation(benchmark, show):
    sequence = icl_nuim.load("lr_kt0", n_frames=10, width=80, height=60,
                             seed=3)
    sequence.materialize()

    variants = {
        # Full coarse-to-fine schedule.
        "pyramid(10,5,4)": {"pyramid_iterations_l0": 10,
                            "pyramid_iterations_l1": 5,
                            "pyramid_iterations_l2": 4},
        # Same total budget, finest level only.
        "fine_only(19,0,0)": {"pyramid_iterations_l0": 10,
                              "pyramid_iterations_l1": 0,
                              "pyramid_iterations_l2": 0},
        # Coarse only: cheap but imprecise.
        "coarse_only(0,0,10)": {"pyramid_iterations_l0": 0,
                                "pyramid_iterations_l1": 0,
                                "pyramid_iterations_l2": 10},
    }

    def run():
        rows = []
        for label, overrides in variants.items():
            result = run_benchmark(
                KinectFusion(), sequence,
                configuration={**BASE, **overrides},
            )
            track_flops = sum(
                k.flops
                for r in result.collector.records
                for k in r.workload.kernels
                if k.name in ("track", "reduce")
            )
            rows.append(
                {
                    "schedule": label,
                    "ate_max_m": result.ate.max,
                    "tracked": result.collector.tracked_fraction(),
                    "track_gflops": track_flops / 1e9,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(rows, title="ICP pyramid ablation (measured pipeline)"))

    by = {r["schedule"]: r for r in rows}
    full = by["pyramid(10,5,4)"]
    coarse = by["coarse_only(0,0,10)"]
    # The full schedule tracks and is accurate.
    assert full["tracked"] == 1.0
    assert full["ate_max_m"] < 0.02
    # Coarse-only costs far less tracking compute but cannot match the
    # full schedule's accuracy.
    assert coarse["track_gflops"] < full["track_gflops"] / 4
    assert coarse["ate_max_m"] > full["ate_max_m"]


def test_robust_tracking_ablation(benchmark, show):
    """Huber-IRLS tracking vs plain least squares, across sensor regimes.

    An extension beyond the reference implementation: robust weighting
    pays off under heavy-tailed edge artefacts and costs nothing on
    well-behaved input.
    """
    from repro.scene import KinectNoiseModel

    outlier_noise = KinectNoiseModel(
        axial_sigma_at_1m=0.0005, lateral_pixels=3.0, dropout_rate=0.001,
        edge_dropout_boost=0.1, quantization_m=0.0005,
    )
    regimes = {
        "gaussian(default)": KinectNoiseModel(),
        "outliers(edges)": outlier_noise,
    }

    def run():
        rows = []
        for regime, noise in regimes.items():
            for robust in (False, True):
                errs = []
                for seed in (3, 4, 5):
                    seq = icl_nuim.load("lr_kt0", n_frames=8, width=80,
                                        height=60, noise=noise, seed=seed)
                    result = run_benchmark(
                        KinectFusion(robust_tracking=robust), seq,
                        configuration=BASE,
                    )
                    errs.append(result.ate.rmse)
                rows.append(
                    {
                        "noise": regime,
                        "tracking": "huber" if robust else "plain",
                        "ate_rmse_mean_m": float(sum(errs) / len(errs)),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(rows, title="Robust-tracking ablation "
                                  "(3 seeds per cell)"))

    by = {(r["noise"], r["tracking"]): r["ate_rmse_mean_m"] for r in rows}
    # Robust wins where it should and does no real harm elsewhere.
    assert by[("outliers(edges)", "huber")] < by[("outliers(edges)", "plain")]
    assert by[("gaussian(default)", "huber")] < (
        by[("gaussian(default)", "plain")] * 1.6
    )


def test_frame_to_model_vs_frame_to_frame(benchmark, show):
    """The TSDF model bounds drift that pure odometry accumulates."""
    sequence = icl_nuim.load("lr_kt0", n_frames=26, width=80, height=60,
                             seed=3)
    sequence.materialize()

    def run():
        kf = run_benchmark(KinectFusion(), sequence, configuration=BASE)
        odo = run_benchmark(ICPOdometry(), sequence)
        return kf, odo

    kf, odo = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        [
            {"tracker": "frame_to_model(kfusion)",
             "ate_max_m": kf.ate.max, "rpe_rmse_m": kf.rpe.trans_rmse},
            {"tracker": "frame_to_frame(odometry)",
             "ate_max_m": odo.ate.max, "rpe_rmse_m": odo.rpe.trans_rmse},
        ],
        title="Tracking reference ablation (26 frames)",
    ))
    assert kf.ate.max < odo.ate.max
