"""E4 — the poster's headline numbers on the ODROID-XU3.

"Dense 3D mapping and tracking in the real-time range within a 1 W power
budget ... a 4.8x execution time improvement and a 2.8x power reduction
compared to the state-of-the-art."
"""

from repro.core import format_table
from repro.experiments import headline


def test_headline_realtime_1w(benchmark, show):
    result = benchmark.pedantic(lambda: headline.run(seed=7),
                                rounds=1, iterations=1)

    show(format_table(result.rows(),
                      title="ODROID-XU3: default vs state-of-the-art vs "
                            "HyperMapper-tuned"))
    show(
        f"vs state of the art: {result.time_improvement_vs_sota:.1f}x time, "
        f"{result.power_reduction_vs_sota:.1f}x power "
        f"(paper: 4.8x / 2.8x)\n"
        f"vs default: {result.time_improvement_vs_default:.1f}x time, "
        f"{result.power_reduction_vs_default:.1f}x power"
    )

    # The paper's claim, as shape: real-time, within 1 W, accurate, with
    # multi-x improvements on both axes.
    assert result.tuned.fps > 30.0
    assert result.tuned.power_w < 1.0
    assert result.tuned.max_ate_m < 0.05
    assert result.time_improvement_vs_sota > 2.0
    assert result.power_reduction_vs_sota > 1.5
    assert result.time_improvement_vs_default > 3.0
    assert result.power_reduction_vs_default > 2.0
