"""S17/S22 — kernel backends on the frame pipeline, two operating points.

Runs the full KinectFusion pipeline under every registered kernel
backend (reference, fast, sparse, and jit when numba is installed) at
two operating points:

* **64x48** — the paper's low-power resolution (the mobile campaign
  sweeps it), full-frame compute, ``integration_rate=1``.
* **320x240** — the real-time headline: ``compute_size_ratio=8`` and
  ``integration_rate=3``, both knobs of the paper's design space, at
  which the sparse voxel-block backend clears the 30 fps budget on a
  single core.

Per-backend numbers are written to ``BENCH_frame_pipeline.json`` at the
repo root so the speed-ups are tracked in-tree.  ``wall_s_per_frame``
is the *median* per-frame wall time (the mean is reported alongside):
the first frame pays one-off allocation and the CI box's scheduler
adds heavy-tailed noise, and the median is the honest summary of both.

The bench *asserts* the perf contract rather than just reporting it:
identical status sequences across backends at both operating points,
``fast <= reference`` at 64x48, and ``sparse <= fast <= reference``
plus ``sparse`` under the 33 ms real-time budget at 320x240 — a perf
regression fails the suite rather than silently shipping.

Correctness is asserted here too (identical status sequences), but the
authoritative equivalence suites are ``tests/test_perf.py`` and
``tests/test_sparse_volume.py``.
"""

import json
import os
import statistics
from pathlib import Path

from repro.core import format_table, run_benchmark
from repro.datasets import icl_nuim
from repro.kfusion import KinectFusion
from repro.perf import kernel_backend_names
from repro.telemetry import Tracer, aggregate_tracer, summary_rows

VOLUME_RESOLUTION = 128
SEED = 0

#: Real-time frame budget the 320x240 sparse backend must clear.
REALTIME_BUDGET_S = 1.0 / 30.0

#: The two operating points; ``config`` keys are paper DSE dimensions.
SECTIONS = {
    "64x48": {
        "width": 64,
        "height": 48,
        "n_frames": 10,
        "config": {
            "volume_resolution": VOLUME_RESOLUTION,
            "volume_size": 5.0,
            "integration_rate": 1,
        },
    },
    "320x240": {
        "width": 320,
        "height": 240,
        "n_frames": 12,
        "config": {
            "volume_resolution": VOLUME_RESOLUTION,
            "volume_size": 5.0,
            "compute_size_ratio": 8,
            "integration_rate": 3,
        },
    },
}

#: The four wall-time kernel stages the pipeline traces per frame.
KERNEL_STAGES = ("preprocess", "track", "integrate", "raycast")

OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_frame_pipeline.json"


def _run_backend(backend: str, section: dict):
    sequence = icl_nuim.load("lr_kt0", n_frames=section["n_frames"],
                             width=section["width"],
                             height=section["height"], seed=SEED)
    sequence.materialize()
    tracer = Tracer(enabled=True)
    result = run_benchmark(
        KinectFusion(kernel_backend=backend),
        sequence,
        configuration=section["config"],
        tracer=tracer,
    )
    stats = aggregate_tracer(tracer)
    kernels = {
        name: {
            "p50_ms": round(stats[name].p50_s * 1e3, 3),
            "p95_ms": round(stats[name].p95_s * 1e3, 3),
            "total_s": round(stats[name].total_s, 4),
        }
        for name in KERNEL_STAGES if name in stats
    }
    frame_walls = [r.wall_time_s for r in result.collector.records]
    statuses = [r.status.value for r in result.collector.records]
    return {
        "kernels": kernels,
        "wall_s_per_frame": round(statistics.median(frame_walls), 4),
        "wall_s_per_frame_mean": round(statistics.fmean(frame_walls), 4),
        "statuses": statuses,
        "summary": summary_rows(stats),
    }


def _section_table(section_name: str, section: dict, runs: dict, show):
    reference = runs["reference"]
    rows = []
    for stage in KERNEL_STAGES:
        row = {"kernel": stage}
        for name, run in runs.items():
            row[f"{name}_p50_ms"] = run["kernels"][stage]["p50_ms"]
        row["speedup_vs_ref"] = round(
            reference["kernels"][stage]["p50_ms"]
            / max(min(run["kernels"][stage]["p50_ms"]
                      for name, run in runs.items()
                      if name != "reference"), 1e-9), 2)
        rows.append(row)
    total_row = {"kernel": "frame total"}
    for name, run in runs.items():
        total_row[f"{name}_p50_ms"] = round(run["wall_s_per_frame"] * 1e3, 1)
    total_row["speedup_vs_ref"] = round(
        reference["wall_s_per_frame"]
        / min(run["wall_s_per_frame"] for name, run in runs.items()
              if name != "reference"), 2)
    rows.append(total_row)
    show(format_table(
        rows,
        title=(f"frame pipeline {section_name} "
               f"vol={section['config']['volume_resolution']} "
               f"({os.cpu_count()} CPUs)"),
    ))


def test_frame_pipeline_backends(benchmark, show):
    def run_all():
        return {
            section_name: {
                backend: _run_backend(backend, section)
                for backend in kernel_backend_names()
            }
            for section_name, section in SECTIONS.items()
        }

    sections = benchmark.pedantic(run_all, rounds=1, iterations=1)

    for section_name, runs in sections.items():
        reference = runs["reference"]
        # Correctness first: backends must agree on what happened.
        for name, run in runs.items():
            assert run["statuses"] == reference["statuses"], \
                (section_name, name)

    # The fast path must earn its default status at the paper's
    # low-power operating point.
    small = sections["64x48"]
    assert small["fast"]["wall_s_per_frame"] \
        <= small["reference"]["wall_s_per_frame"]

    # The real-time headline: sparse <= fast <= reference, end-to-end
    # and per kernel (cumulative wall, robust to integration_rate skip
    # frames), and sparse under the 30 fps budget.  Only the kernels
    # the sparse backend reimplements are ordered per kernel:
    # preprocess/track are the same code in fast and sparse, so an
    # ordering there would assert on scheduler noise.
    large = sections["320x240"]
    assert large["sparse"]["wall_s_per_frame"] \
        <= large["fast"]["wall_s_per_frame"]
    assert large["fast"]["wall_s_per_frame"] \
        <= large["reference"]["wall_s_per_frame"]
    for stage in ("integrate", "raycast"):
        chain = [large[name]["kernels"][stage]["total_s"]
                 for name in ("sparse", "fast", "reference")]
        assert chain == sorted(chain), (stage, chain)
    assert large["sparse"]["wall_s_per_frame"] < REALTIME_BUDGET_S, \
        large["sparse"]["wall_s_per_frame"]

    for section_name, runs in sections.items():
        _section_table(section_name, SECTIONS[section_name], runs, show)

    payload = {
        "benchmark": "frame_pipeline",
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "realtime_budget_s": round(REALTIME_BUDGET_S, 4),
        "sections": {
            section_name: {
                "width": SECTIONS[section_name]["width"],
                "height": SECTIONS[section_name]["height"],
                "n_frames": SECTIONS[section_name]["n_frames"],
                "config": SECTIONS[section_name]["config"],
                "backends": {
                    name: {
                        "kernels": run["kernels"],
                        "wall_s_per_frame": run["wall_s_per_frame"],
                        "wall_s_per_frame_mean":
                            run["wall_s_per_frame_mean"],
                    }
                    for name, run in runs.items()
                },
                "speedup": round(
                    runs["reference"]["wall_s_per_frame"]
                    / min(run["wall_s_per_frame"]
                          for name, run in runs.items()
                          if name != "reference"), 3),
            }
            for section_name, runs in sections.items()
        },
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    show(f"wrote {OUT_PATH.name}")
