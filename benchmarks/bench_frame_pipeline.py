"""S17 — fast vs reference kernel backend on the frame pipeline.

Runs the full KinectFusion pipeline at the paper's low-power operating
point (64x48, the resolution the mobile campaign sweeps) under both
registered kernel backends, with telemetry enabled, and reports
per-kernel p50/p95 alongside end-to-end wall seconds per frame.  The
numbers are written to ``BENCH_frame_pipeline.json`` at the repo root so
the fast path's speed-up is tracked in-tree, and the bench *asserts*
the fast backend is no slower than the reference — a perf regression
fails the suite rather than silently shipping.

Correctness is asserted here too (identical status sequences), but the
authoritative equivalence suite is ``tests/test_perf.py``.
"""

import json
import os
from pathlib import Path

from repro.core import format_table, run_benchmark
from repro.datasets import icl_nuim
from repro.kfusion import KinectFusion
from repro.perf import kernel_backend_names
from repro.telemetry import Tracer, aggregate_tracer, summary_rows

N_FRAMES = 10
WIDTH, HEIGHT = 64, 48
VOLUME_RESOLUTION = 128
SEED = 0

#: The four wall-time kernel stages the pipeline traces per frame.
KERNEL_STAGES = ("preprocess", "track", "integrate", "raycast")

OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_frame_pipeline.json"


def _run_backend(backend: str):
    sequence = icl_nuim.load("lr_kt0", n_frames=N_FRAMES, width=WIDTH,
                             height=HEIGHT, seed=SEED)
    sequence.materialize()
    tracer = Tracer(enabled=True)
    result = run_benchmark(
        KinectFusion(kernel_backend=backend),
        sequence,
        configuration={
            "volume_resolution": VOLUME_RESOLUTION,
            "volume_size": 5.0,
            "integration_rate": 1,
        },
        tracer=tracer,
    )
    stats = aggregate_tracer(tracer)
    kernels = {
        name: {
            "p50_ms": round(stats[name].p50_s * 1e3, 3),
            "p95_ms": round(stats[name].p95_s * 1e3, 3),
            "total_s": round(stats[name].total_s, 4),
        }
        for name in KERNEL_STAGES if name in stats
    }
    wall_s = sum(stats[name].total_s for name in KERNEL_STAGES
                 if name in stats)
    statuses = [r.status.value for r in result.collector.records]
    return {
        "kernels": kernels,
        "wall_s_per_frame": round(wall_s / N_FRAMES, 4),
        "statuses": statuses,
        "summary": summary_rows(stats),
    }


def test_frame_pipeline_backends(benchmark, show):
    def run_all():
        return {name: _run_backend(name) for name in kernel_backend_names()}

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    fast, reference = runs["fast"], runs["reference"]
    # Correctness first: backends must agree on what happened.
    assert fast["statuses"] == reference["statuses"]
    # The fast path must earn its default status.
    assert fast["wall_s_per_frame"] <= reference["wall_s_per_frame"]

    rows = []
    for stage in KERNEL_STAGES:
        rows.append({
            "kernel": stage,
            "ref_p50_ms": reference["kernels"][stage]["p50_ms"],
            "ref_p95_ms": reference["kernels"][stage]["p95_ms"],
            "fast_p50_ms": fast["kernels"][stage]["p50_ms"],
            "fast_p95_ms": fast["kernels"][stage]["p95_ms"],
            "speedup_p50": round(
                reference["kernels"][stage]["p50_ms"]
                / max(fast["kernels"][stage]["p50_ms"], 1e-9), 2),
        })
    rows.append({
        "kernel": "frame total",
        "ref_p50_ms": round(reference["wall_s_per_frame"] * 1e3, 1),
        "ref_p95_ms": "",
        "fast_p50_ms": round(fast["wall_s_per_frame"] * 1e3, 1),
        "fast_p95_ms": "",
        "speedup_p50": round(reference["wall_s_per_frame"]
                             / fast["wall_s_per_frame"], 2),
    })
    show(format_table(
        rows,
        title=(f"frame pipeline {WIDTH}x{HEIGHT} vol={VOLUME_RESOLUTION} "
               f"({os.cpu_count()} CPUs)"),
    ))

    payload = {
        "benchmark": "frame_pipeline",
        "n_frames": N_FRAMES,
        "width": WIDTH,
        "height": HEIGHT,
        "volume_resolution": VOLUME_RESOLUTION,
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "backends": {
            name: {
                "kernels": run["kernels"],
                "wall_s_per_frame": run["wall_s_per_frame"],
            }
            for name, run in runs.items()
        },
        "speedup": round(reference["wall_s_per_frame"]
                         / fast["wall_s_per_frame"], 3),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    show(f"wrote {OUT_PATH.name}")
