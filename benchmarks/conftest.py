"""Benchmark-suite configuration.

Every bench regenerates one figure of the paper (see DESIGN.md's
experiment index) and prints the regenerated rows/series, so running
``pytest benchmarks/ --benchmark-only -s`` reproduces the whole
evaluation section as text artefacts.  Heavy experiment drivers run once
per bench (``pedantic`` with one round) — the interesting output is the
figure, the timing is a bonus.
"""

import pytest


def pytest_configure(config):
    # The benches print regenerated figures; showing them is the point.
    config.option.benchmark_disable_gc = True


@pytest.fixture()
def show():
    """Print through pytest's capture (the figures should be visible)."""

    def _show(text: str) -> None:
        print()
        print(text)

    return _show
