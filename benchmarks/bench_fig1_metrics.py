"""E1 / Figure 1 — the live metric stream of the SLAMBench GUI.

Regenerates the per-frame table (speed, power, accuracy, tracking status)
the GUI displays, for the default-quality pipeline on a living-room
sequence, and times one full harness pass.
"""

from repro.experiments import fig1_gui


def test_fig1_gui_stream(benchmark, show):
    stream = benchmark.pedantic(
        lambda: fig1_gui.run(n_frames=10, width=80, height=60,
                             volume_resolution=128),
        rounds=1,
        iterations=1,
    )
    show(stream.table())
    show(f"reconstruction: mean |error| = "
         f"{stream.reconstruction.mean_abs * 100:.1f} cm, "
         f"completeness = {stream.reconstruction.completeness:.2f}")

    # Figure shape: the pipeline tracks, accuracy readout stays in the
    # centimetre range, every row carries live metrics.
    assert len(stream.rows) == 10
    assert stream.rows[-1]["ate_so_far_m"] < 0.05
    assert all(r["frame_time_ms"] > 0 for r in stream.rows)
