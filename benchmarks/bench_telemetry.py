"""Telemetry overhead benchmarks.

The tracing layer must be effectively free when disabled (the default)
and cheap enough when enabled that tracing a run doesn't distort the
numbers it reports.  Both claims are asserted here against the real
pipeline, not a microbenchmark.
"""

import pytest

from repro.core import run_benchmark
from repro.datasets import icl_nuim
from repro.kfusion import KinectFusion
from repro.telemetry import Tracer

CONFIG = {"volume_resolution": 96, "volume_size": 5.0,
          "integration_rate": 1}


@pytest.fixture(scope="module")
def sequence():
    seq = icl_nuim.load("lr_kt0", n_frames=6, width=80, height=60)
    seq.materialize()
    return seq


def test_untraced_run(benchmark, sequence):
    """Baseline: the default disabled-tracer path."""
    result = benchmark.pedantic(
        lambda: run_benchmark(KinectFusion(), sequence,
                              configuration=CONFIG),
        rounds=1, iterations=1,
    )
    assert result.collector.tracked_fraction() >= 0.8


def test_traced_run_overhead(benchmark, sequence):
    """Tracing on: full span capture must stay within 25% of untraced."""

    def run():
        untraced = run_benchmark(KinectFusion(), sequence,
                                 configuration=CONFIG)
        tracer = Tracer()
        traced = run_benchmark(KinectFusion(), sequence,
                               configuration=CONFIG, tracer=tracer)
        return untraced, traced, tracer

    untraced, traced, tracer = benchmark.pedantic(run, rounds=1,
                                                  iterations=1)
    # 4 stage spans + 1 frame span per frame, plus init/accuracy spans.
    assert len(tracer) >= 5 * len(untraced.collector)
    assert traced.mean_wall_time_s < untraced.mean_wall_time_s * 1.25
